#include "analysis/dominators.hh"

#include "support/error.hh"

namespace softcheck
{

DominatorTree::DominatorTree(const Function &fn)
{
    order = fn.reversePostOrder();
    for (std::size_t i = 0; i < order.size(); ++i)
        rpoIndex[order[i]] = i;

    if (order.empty())
        return;

    auto pred_map = fn.predecessors();

    // intersect() from Cooper-Harvey-Kennedy, walking up by RPO index.
    auto intersect = [&](BasicBlock *a, BasicBlock *b) {
        while (a != b) {
            while (rpoIndex.at(a) > rpoIndex.at(b))
                a = idoms.at(a);
            while (rpoIndex.at(b) > rpoIndex.at(a))
                b = idoms.at(b);
        }
        return a;
    };

    BasicBlock *entry = order.front();
    idoms[entry] = entry;

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 1; i < order.size(); ++i) {
            BasicBlock *bb = order[i];
            BasicBlock *new_idom = nullptr;
            for (BasicBlock *p : pred_map.at(bb)) {
                if (!reachable(p) || !idoms.count(p))
                    continue;
                new_idom = new_idom ? intersect(p, new_idom) : p;
            }
            scAssert(new_idom, "reachable block without processed pred");
            auto it = idoms.find(bb);
            if (it == idoms.end() || it->second != new_idom) {
                idoms[bb] = new_idom;
                changed = true;
            }
        }
    }

    // Dominator-tree children.
    for (std::size_t i = 1; i < order.size(); ++i)
        kids[idoms.at(order[i])].push_back(order[i]);

    // Dominance frontiers.
    for (BasicBlock *bb : order) {
        const auto &preds = pred_map.at(bb);
        if (preds.size() < 2)
            continue;
        for (BasicBlock *p : preds) {
            if (!reachable(p))
                continue;
            BasicBlock *runner = p;
            while (runner != idoms.at(bb)) {
                frontiers[runner].insert(bb);
                runner = idoms.at(runner);
            }
        }
    }
}

BasicBlock *
DominatorTree::idom(const BasicBlock *bb) const
{
    auto it = idoms.find(bb);
    if (it == idoms.end() || it->second == bb)
        return nullptr;
    return it->second;
}

bool
DominatorTree::dominates(const BasicBlock *a, const BasicBlock *b) const
{
    if (!reachable(a) || !reachable(b))
        return false;
    const BasicBlock *runner = b;
    for (;;) {
        if (runner == a)
            return true;
        auto it = idoms.find(runner);
        if (it == idoms.end() || it->second == runner)
            return false;
        runner = it->second;
    }
}

bool
DominatorTree::dominates(const Instruction *def,
                         const Instruction *use) const
{
    if (def->parent() == use->parent())
        return def->id() < use->id();
    return dominates(def->parent(), use->parent());
}

const std::set<BasicBlock *> &
DominatorTree::frontier(const BasicBlock *bb) const
{
    auto it = frontiers.find(bb);
    return it == frontiers.end() ? emptySet : it->second;
}

const std::vector<BasicBlock *> &
DominatorTree::children(const BasicBlock *bb) const
{
    auto it = kids.find(bb);
    return it == kids.end() ? emptyVec : it->second;
}

} // namespace softcheck
