/**
 * @file
 * Flow-sensitive interval value-range analysis over the SSA IR.
 *
 * Abstract interpretation with one signed interval per SSA value,
 * expressed in the value's own type domain (an i8 lives in [-128, 127];
 * i1 in [-1, 0] because the interpreter sign-extends raw bits). The
 * fixed point runs an RPO-ordered worklist from bottom, with widening
 * at loop-header phis (via LoopInfo) so counting loops terminate, and
 * two exact narrowing sweeps afterwards to recover precision lost to
 * widening. Branch conditions refine ranges: an edge guarded by
 * `icmp slt %x, C` narrows %x in every block dominated by the guarded
 * successor (when that successor has the branch block as its only
 * predecessor).
 *
 * Transfer functions share arithmetic semantics with const_fold and the
 * interpreter: w-bit wraparound (a transfer that may overflow the type
 * domain widens to the full domain rather than clamping), shift amounts
 * masked by width-1, SDiv/SRem INT_MIN corner cases. Floats get a
 * deliberately coarse companion lattice (bounds plus a maybe-NaN bit)
 * used for reporting only — a NaN can always slip through arithmetic,
 * so float checks are never provably vacuous.
 */

#ifndef SOFTCHECK_ANALYSIS_RANGE_ANALYSIS_HH
#define SOFTCHECK_ANALYSIS_RANGE_ANALYSIS_HH

#include <cstdint>
#include <map>
#include <string>

#include "ir/function.hh"

namespace softcheck
{

/**
 * A signed interval over the value's type domain, or bottom (no value
 * observed; unreachable code stays bottom). Bounds are sign-extended
 * 64-bit views of the w-bit value, matching ConstantInt::signedValue()
 * and the interpreter's CheckRange comparison.
 */
struct IntRange
{
    int64_t lo = INT64_MAX; //!< lo > hi encodes bottom
    int64_t hi = INT64_MIN;

    static IntRange bottom() { return {}; }
    static IntRange point(int64_t v) { return {v, v}; }
    static int64_t domainMin(unsigned width);
    static int64_t domainMax(unsigned width);
    /** The full signed domain of a @p width -bit integer. */
    static IntRange full(unsigned width);

    bool isBottom() const { return lo > hi; }
    bool isPoint() const { return lo == hi; }
    bool isFull(unsigned width) const;
    bool contains(int64_t v) const { return lo <= v && v <= hi; }
    bool containsRange(const IntRange &o) const
    {
        return o.isBottom() || (lo <= o.lo && o.hi <= hi);
    }

    /** Least upper bound (interval hull). */
    IntRange join(const IntRange &o) const;
    /** Intersection; bottom when disjoint. */
    IntRange meet(const IntRange &o) const;

    bool operator==(const IntRange &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
    bool operator!=(const IntRange &o) const { return !(*this == o); }

    std::string str() const;
};

/** Coarse float companion: bounds (possibly infinite) + maybe-NaN. */
struct FloatRange
{
    double lo = 0;
    double hi = 0;
    bool maybeNaN = false;
    bool bottom = true;

    static FloatRange top();
    static FloatRange point(double v);

    FloatRange join(const FloatRange &o) const;

    std::string str() const;
};

/**
 * One-step transfer of @p inst assuming every register operand holds an
 * arbitrary bit pattern of its type (full domain) while constant
 * operands keep their exact immediate values. This is the range a
 * corrupted execution can produce: the fault model flips register
 * slots, never instruction-encoded immediates, so a check whose pass
 * set contains this range cannot fire no matter how upstream registers
 * are corrupted. Returns the full result domain for opcodes with no
 * integer transfer (loads, calls, phis).
 */
IntRange intTransferArbitraryOperands(const Instruction &inst);

/**
 * Bits of every value in @p r that are provably zero (knownZeroBits)
 * or provably one (knownOneBits) when the value is viewed as the raw
 * @p width -bit register pattern the interpreter stores. A same-sign
 * interval fixes every bit above the highest bit at which the two
 * (truncated, unsigned) endpoints differ; a mixed-sign interval is
 * split at zero and the two halves' known bits intersected. A bottom
 * range returns all bits as known — vacuously true of the empty set
 * of values; callers on reachable code never see bottom.
 */
uint64_t knownZeroBits(const IntRange &r, unsigned width);
uint64_t knownOneBits(const IntRange &r, unsigned width);

/**
 * Interval hull of { v XOR (1 << bit) : v in r } in the same signed
 * @p width -bit domain as @p r. When @p bit is known-zero or known-one
 * across r the flip is a uniform +/-2^bit shift and the hull is exact;
 * a flipped sign bit splits r at zero and joins the per-sign shifts.
 * This is the set of values a single-bit fault in a register holding
 * r can produce — the fault-space partitioner meets it against check
 * pass sets to decide whether the bit can change a verdict. Bottom in,
 * bottom out. Requires bit < width (width 0 means 64).
 */
IntRange flippedRange(const IntRange &r, unsigned width, unsigned bit);

class RangeAnalysis
{
  public:
    /** Build and run to fixpoint; snapshots the current CFG. */
    explicit RangeAnalysis(const Function &fn);

    /**
     * Range of @p v at its definition (flow-sensitive in the sense
     * that the fixpoint already used edge refinements where operands
     * are consumed). Full domain for untracked values and for
     * instructions in unreachable code.
     */
    IntRange intRange(const Value *v) const;

    /**
     * Range of @p v valid inside @p at: intRange(v) refined by every
     * branch constraint whose guarded block dominates @p at.
     */
    IntRange intRangeAt(const Value *v, const BasicBlock *at) const;

    FloatRange floatRange(const Value *v) const;

    /** Number of fixpoint iterations (testing/diagnostics). */
    unsigned iterations() const { return iters; }

  private:
    friend class RangeSolver;

    const Function &fn;
    std::map<const Value *, IntRange> intRanges;
    std::map<const Value *, FloatRange> floatRanges;
    /** Per-block accumulated refinements (own + inherited via idom). */
    std::map<const BasicBlock *, std::map<const Value *, IntRange>>
        refinedAt;
    unsigned iters = 0;
};

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_RANGE_ANALYSIS_HH
