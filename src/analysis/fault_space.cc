#include "analysis/fault_space.hh"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "ir/basic_block.hh"
#include "support/bits.hh"

namespace softcheck
{

// ---------------------------------------------------------------------
// FaultSpaceSummary
// ---------------------------------------------------------------------

void
FaultSpaceSummary::merge(const FaultSpaceSummary &o)
{
    totalSites += o.totalSites;
    deadSites += o.deadSites;
    maskedSites += o.maskedSites;
    activeSites += o.activeSites;
    classCount += o.classCount;
    largestClass = std::max(largestClass, o.largestClass);
    for (std::size_t i = 0; i < classSizeHist.size(); ++i)
        classSizeHist[i] += o.classSizeHist[i];
}

double
FaultSpaceSummary::deadPct() const
{
    return totalSites ? 100.0 * static_cast<double>(deadSites) /
                            static_cast<double>(totalSites)
                      : 0.0;
}

double
FaultSpaceSummary::maskedPct() const
{
    return totalSites ? 100.0 * static_cast<double>(maskedSites) /
                            static_cast<double>(totalSites)
                      : 0.0;
}

// ---------------------------------------------------------------------
// Check flip-invariance
// ---------------------------------------------------------------------

namespace
{

const ConstantInt *
constOperand(const Instruction &inst, unsigned pos)
{
    return dynamic_cast<const ConstantInt *>(inst.operand(pos));
}

/**
 * Hull of the values the operand can hold fault-free or with @p bit
 * flipped. Uses the definition range (not at-use refinements): a
 * refinement derived from a branch on the flipped value itself would
 * be circular.
 */
IntRange
flipHull(const Value *v, unsigned bit, const RangeAnalysis &ra)
{
    const unsigned w = v->type().bitWidth();
    const IntRange r = ra.intRange(v);
    return r.join(flippedRange(r, w, bit));
}

/**
 * Does @p pred evaluate to one constant over every (a, b) in A x B?
 * Returns 1/0 for a provably constant verdict, -1 for unknown.
 * Unsigned predicates are only decided when both ranges are
 * non-negative (where unsigned and signed order agree).
 */
int
predConstOver(Predicate pred, const IntRange &A, const IntRange &B)
{
    if (A.isBottom() || B.isBottom())
        return 1; // vacuous: no value pair exists

    // Unsigned predicates agree with signed order only when both
    // ranges are non-negative; otherwise stay undecided.
    switch (pred) {
    case Predicate::Ult:
    case Predicate::Ule:
    case Predicate::Ugt:
    case Predicate::Uge:
        if (A.lo < 0 || B.lo < 0)
            return -1;
        pred = static_cast<Predicate>(
            static_cast<uint8_t>(pred) -
            (static_cast<uint8_t>(Predicate::Ult) -
             static_cast<uint8_t>(Predicate::Slt)));
        break;
    default:
        break;
    }

    switch (pred) {
    case Predicate::Eq:
        if (A.isPoint() && B.isPoint())
            return A.lo == B.lo;
        if (A.meet(B).isBottom())
            return 0;
        return -1;
    case Predicate::Ne:
        if (A.isPoint() && B.isPoint())
            return A.lo != B.lo;
        if (A.meet(B).isBottom())
            return 1;
        return -1;
    case Predicate::Slt:
        if (A.hi < B.lo)
            return 1;
        if (A.lo >= B.hi)
            return 0;
        return -1;
    case Predicate::Sle:
        if (A.hi <= B.lo)
            return 1;
        if (A.lo > B.hi)
            return 0;
        return -1;
    case Predicate::Sgt:
        if (A.lo > B.hi)
            return 1;
        if (A.hi <= B.lo)
            return 0;
        return -1;
    case Predicate::Sge:
        if (A.lo >= B.hi)
            return 1;
        if (A.hi < B.lo)
            return 0;
        return -1;
    default:
        return -1;
    }
}

} // namespace

bool
checkFlipInvariant(const Instruction &check, unsigned pos,
                   unsigned bit, const RangeAnalysis &ra)
{
    const Value *v = check.operand(pos);
    if (!v || v->slot() < 0 || !v->type().isInteger())
        return false;
    const IntRange hull = flipHull(v, bit, ra);

    switch (check.opcode()) {
    case Opcode::CheckOne: {
        // Passes iff value == expected. A flip is unobservable only
        // when the check can never pass: a never-passing check fires
        // fault-free too, so calibration disables it for trials.
        if (pos != 0)
            return false;
        const ConstantInt *c = constOperand(check, 1);
        return c && !hull.contains(c->signedValue());
    }
    case Opcode::CheckTwo: {
        if (pos != 0)
            return false;
        const ConstantInt *c1 = constOperand(check, 1);
        const ConstantInt *c2 = constOperand(check, 2);
        return c1 && c2 && !hull.contains(c1->signedValue()) &&
               !hull.contains(c2->signedValue());
    }
    case Opcode::CheckRange: {
        if (pos != 0 || !v->type().isInteger())
            return false;
        const ConstantInt *lo = constOperand(check, 1);
        const ConstantInt *hi = constOperand(check, 2);
        if (!lo || !hi)
            return false;
        const IntRange pass{lo->signedValue(), hi->signedValue()};
        // Always-passes: neither the fault-free nor the flipped value
        // can fire the check. Never-passes: calibration-disabled.
        return pass.containsRange(hull) || hull.meet(pass).isBottom();
    }
    case Opcode::CheckEq:
    default:
        // CheckEq compares two registers; a flip of either side
        // always changes the verdict. Non-check opcodes: not ours.
        return false;
    }
}

bool
checkOperandFaultSpaceMasked(const Instruction &check,
                             const RangeAnalysis &ra)
{
    bool any_register = false;
    for (unsigned p = 0; p < check.numOperands(); ++p) {
        const Value *v = check.operand(p);
        if (!v || v->slot() < 0)
            continue;
        any_register = true;
        const unsigned w = v->type().bitWidth();
        for (unsigned b = 0; b < (w ? w : 64); ++b)
            if (!checkFlipInvariant(check, p, b, ra))
                return false;
    }
    return any_register;
}

// ---------------------------------------------------------------------
// FunctionFaultSpace: masked-bit greatest fixpoint
// ---------------------------------------------------------------------

namespace
{

unsigned
widthOf(const Value *v)
{
    const unsigned w = v->type().bitWidth();
    return w == 0 || w > 64 ? 64 : w;
}

} // namespace

FunctionFaultSpace::FunctionFaultSpace(const Function &f)
    : fn(f), ra(f), live(f)
{
    const unsigned slots = fn.numSlots();
    slotDef.assign(slots, nullptr);
    widths.assign(slots, 64);
    masked.assign(slots, 0);
    frac64.assign(slots, 0);

    for (unsigned i = 0; i < fn.numArgs(); ++i) {
        const Value *a = fn.arg(i);
        if (a->slot() >= 0)
            slotDef[a->slot()] = a;
    }
    for (const auto &bb : fn)
        for (const auto &inst : *bb)
            if (inst->slot() >= 0)
                slotDef[inst->slot()] = inst.get();

    // Greatest fixpoint: every bit starts masked and is killed as soon
    // as one use can observe it. Cyclic chains (loop phis) correctly
    // keep bits masked only if every use around the cycle does.
    for (unsigned s = 0; s < slots; ++s) {
        if (slotDef[s])
            widths[s] = widthOf(slotDef[s]);
        masked[s] = lowBitMask(widths[s]);
    }

    // Can a flip of bit b in operand position p of U stay unobservable?
    // For value-propagating opcodes the perturbation is confined to a
    // computable result bit, which must itself currently be masked.
    auto use_keeps_masked = [&](const Value *v, unsigned b,
                                const Instruction *u, unsigned p) {
        const unsigned vw = widthOf(v);
        const unsigned uw =
            u->slot() >= 0 ? widthOf(u) : 0;
        auto masked_res = [&](unsigned rb) {
            return u->slot() >= 0 && rb < uw &&
                   ((masked[u->slot()] >> rb) & 1);
        };
        auto masked_res_span = [&](unsigned lo_b, unsigned hi_b) {
            for (unsigned rb = lo_b; rb <= hi_b; ++rb)
                if (!masked_res(rb))
                    return false;
            return true;
        };
        // A value feeding two operand positions of the same
        // instruction flips in both at once; the per-position rules
        // assume a single perturbed operand, so stay conservative.
        for (unsigned q = 0; q < u->numOperands(); ++q)
            if (q != p && u->operand(q) == v)
                return false;

        if (isCheck(u->opcode()))
            return u->isElided() || checkFlipInvariant(*u, p, b, ra);

        const ConstantInt *other =
            u->numOperands() == 2
                ? dynamic_cast<const ConstantInt *>(u->operand(1 - p))
                : nullptr;
        switch (u->opcode()) {
        case Opcode::And:
            if (other && !testBit(other->rawValue(), b))
                return true; // bit anded away
            return masked_res(b);
        case Opcode::Or:
            if (other && testBit(other->rawValue(), b))
                return true; // bit ored to one regardless
            return masked_res(b);
        case Opcode::Xor:
            return masked_res(b);
        case Opcode::Shl: {
            if (p != 0)
                return false;
            const ConstantInt *amt = constOperand(*u, 1);
            if (!amt)
                return false;
            const unsigned c = amt->rawValue() & (uw - 1);
            return b + c >= uw || masked_res(b + c);
        }
        case Opcode::LShr: {
            if (p != 0)
                return false;
            const ConstantInt *amt = constOperand(*u, 1);
            if (!amt)
                return false;
            const unsigned c = amt->rawValue() & (uw - 1);
            return b < c || masked_res(b - c);
        }
        case Opcode::AShr: {
            if (p != 0)
                return false;
            const ConstantInt *amt = constOperand(*u, 1);
            if (!amt)
                return false;
            const unsigned c = amt->rawValue() & (uw - 1);
            if (b == vw - 1) // sign bit smears over the top c+1 bits
                return masked_res_span(vw - 1 - c, vw - 1);
            return b < c || masked_res(b - c);
        }
        case Opcode::Trunc:
            return b >= uw || masked_res(b);
        case Opcode::ZExt:
            return masked_res(b);
        case Opcode::SExt:
            if (b == vw - 1) // sign bit replicates into the top bits
                return masked_res_span(vw - 1, uw - 1);
            return masked_res(b);
        case Opcode::PtrToInt:
        case Opcode::IntToPtr:
            return vw == uw && masked_res(b);
        case Opcode::Phi:
            return masked_res(b);
        case Opcode::Select:
            return p != 0 && masked_res(b);
        case Opcode::ICmp: {
            // Invariant if the predicate is provably constant over
            // (hull of fault-free + flipped values) x (other range).
            const Value *o = u->operand(1 - p);
            IntRange oR;
            if (auto *c = dynamic_cast<const ConstantInt *>(o))
                oR = IntRange::point(c->signedValue());
            else
                oR = ra.intRange(o);
            const IntRange h = flipHull(v, b, ra);
            const int verdict =
                p == 0 ? predConstOver(u->predicate(), h, oR)
                       : predConstOver(u->predicate(), oR, h);
            return verdict >= 0;
        }
        default:
            // Branches, memory, calls, returns, arithmetic, float
            // ops: the flip escapes or spreads beyond one bit.
            return false;
        }
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &bb : fn) {
            for (const auto &inst : *bb) {
                const Instruction *u = inst.get();
                for (unsigned p = 0; p < u->numOperands(); ++p) {
                    const Value *v = u->operand(p);
                    if (!v || v->slot() < 0)
                        continue;
                    const unsigned s =
                        static_cast<unsigned>(v->slot());
                    uint64_t still = masked[s];
                    while (still) {
                        const unsigned b =
                            std::countr_zero(still);
                        still &= still - 1;
                        if (!use_keeps_masked(v, b, u, p)) {
                            masked[s] &= ~(1ULL << b);
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    for (unsigned s = 0; s < slots; ++s)
        frac64[s] = static_cast<uint8_t>(
            std::popcount(masked[s]) * (64 / widths[s]));
}

// ---------------------------------------------------------------------
// Static site census
// ---------------------------------------------------------------------

FaultSpaceSummary
FunctionFaultSpace::summarize() const
{
    FaultSpaceSummary sum;
    const unsigned slots = fn.numSlots();

    for (const auto &bb : fn) {
        // Non-phi instructions of the block, in execution order; phi
        // moves apply on edges, so injection points are non-phi only.
        std::vector<const Instruction *> body;
        for (const auto &inst : *bb)
            if (inst->opcode() != Opcode::Phi)
                body.push_back(inst.get());
        const unsigned n = static_cast<unsigned>(body.size());
        if (n == 0)
            continue;

        // Read positions per slot (runtime reads: elided checks skip
        // their operands; successor phi sources load at the
        // terminator, during take_edge).
        std::unordered_map<unsigned, std::vector<unsigned>> reads;
        for (unsigned i = 0; i < n; ++i) {
            if (isCheck(body[i]->opcode()) && body[i]->isElided())
                continue;
            for (const Value *op : body[i]->operands())
                if (op && op->slot() >= 0) {
                    auto &v = reads[op->slot()];
                    if (v.empty() || v.back() != i)
                        v.push_back(i);
                }
        }
        for (const BasicBlock *sb : bb->successors())
            for (const Instruction *phi : sb->phis()) {
                const Value *src = phi->incomingValueFor(bb.get());
                if (src && src->slot() >= 0) {
                    auto &v = reads[src->slot()];
                    if (v.empty() || v.back() != n - 1)
                        v.push_back(n - 1);
                }
            }

        for (unsigned s = 0; s < slots; ++s) {
            const unsigned w = widths[s];
            const unsigned masked_bits = std::popcount(masked[s]);
            const unsigned active_bits = w - masked_bits;

            auto it = reads.find(s);
            const std::vector<unsigned> empty_reads;
            const auto &rs =
                it == reads.end() ? empty_reads : it->second;
            std::size_t ri = rs.size();

            // Walk injection points backward; sites between two reads
            // of s (or after the last read) share their first
            // subsequent read and form one class per active bit.
            uint64_t run = 0;
            auto flush = [&]() {
                if (run == 0 || active_bits == 0)
                    return;
                sum.classCount += active_bits;
                sum.largestClass = std::max(sum.largestClass, run);
                const unsigned bucket = std::min<unsigned>(
                    std::bit_width(run) - 1,
                    static_cast<unsigned>(sum.classSizeHist.size()) -
                        1);
                sum.classSizeHist[bucket] += active_bits;
                run = 0;
            };
            for (unsigned i = n; i-- > 0;) {
                if (ri > 0 && rs[ri - 1] == i) {
                    flush(); // i starts a new first-read group
                    --ri;
                }
                sum.totalSites += w;
                if (!live.liveBefore(body[i], s)) {
                    sum.deadSites += w;
                    continue;
                }
                sum.maskedSites += masked_bits;
                sum.activeSites += active_bits;
                ++run;
            }
            flush();
        }
    }
    return sum;
}

// ---------------------------------------------------------------------
// ModuleFaultSpace
// ---------------------------------------------------------------------

ModuleFaultSpace::ModuleFaultSpace(const Module &m)
{
    for (const Function *fn : m.functions())
        fns.emplace(fn, std::make_unique<FunctionFaultSpace>(*fn));
}

FaultSpaceSummary
ModuleFaultSpace::summarize() const
{
    FaultSpaceSummary sum;
    for (const auto &[fn, fs] : fns)
        sum.merge(fs->summarize());
    return sum;
}

} // namespace softcheck
