/**
 * @file
 * Static fault-space partitioner.
 *
 * The fault model flips one bit of one live-in-the-ring register slot
 * at one dynamic instruction, so the static fault space of a function
 * is the set of (instruction point, register slot, bit) triples. This
 * pass classifies every triple into a three-level lattice:
 *
 *   dead ⊑ masked ⊑ active
 *
 *  - *dead*: the slot is not live at the injection point
 *    (LivenessAnalysis) — the flipped value is overwritten or the
 *    frame exits before any read, so the trial is Masked by
 *    construction.
 *  - *masked*: the slot is live but the flipped bit provably cannot
 *    alter any check verdict, branch, memory access, call, or output
 *    along the producer chain. Computed as a greatest fixpoint over
 *    per-use propagation rules: a bit starts masked and is killed as
 *    soon as one use can observe it (see fault_space.cc for the rule
 *    table; range analysis powers the comparison-invariance rules via
 *    flippedRange()).
 *  - *active*: everything else. Active sites in the same block whose
 *    first subsequent read of the slot is the same instruction are
 *    equivalent — the flipped value is dormant in the register file
 *    until that read, so one representative trial covers the class.
 *
 * Masked-bit claims are exactness-preserving, not just sound: a trial
 * whose flipped bit is masked runs to completion with bit-identical
 * control flow, memory traffic, output signal and cycle count, so its
 * outcome is Masked exactly as a blind campaign would compute it.
 */

#ifndef SOFTCHECK_ANALYSIS_FAULT_SPACE_HH
#define SOFTCHECK_ANALYSIS_FAULT_SPACE_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "analysis/liveness.hh"
#include "analysis/range_analysis.hh"
#include "ir/module.hh"

namespace softcheck
{

/** Static site census over (instruction, slot, bit) triples. */
struct FaultSpaceSummary
{
    uint64_t totalSites = 0;
    uint64_t deadSites = 0;   //!< slot not live at the injection point
    uint64_t maskedSites = 0; //!< live slot, provably unobservable bit
    uint64_t activeSites = 0;
    uint64_t classCount = 0;   //!< equivalence classes of active sites
    uint64_t largestClass = 0; //!< sites in the biggest class
    /** classSizeHist[k] = classes with size in [2^k, 2^(k+1)). */
    std::array<uint64_t, 16> classSizeHist{};

    void merge(const FaultSpaceSummary &o);
    double deadPct() const;
    double maskedPct() const;
};

/**
 * Per-function fault-space classification: liveness + masked-bit sets
 * per slot. @p fn must already be renumbered (ExecModule construction
 * does this).
 */
class FunctionFaultSpace
{
  public:
    explicit FunctionFaultSpace(const Function &fn);

    const Function &function() const { return fn; }
    const LivenessAnalysis &liveness() const { return live; }
    const RangeAnalysis &ranges() const { return ra; }

    /** Bits of @p slot no single-bit fault can make observable. */
    uint64_t maskedBits(unsigned slot) const { return masked[slot]; }
    bool bitMasked(unsigned slot, unsigned bit) const
    {
        return (masked[slot] >> bit) & 1;
    }

    unsigned slotWidth(unsigned slot) const { return widths[slot]; }

    /**
     * 64ths of the slot's bit space that are masked: the probability
     * that the injector's uniform bit draw inside this slot lands on
     * a masked bit is maskedSixtyFourths(slot) / 64. Exact because
     * every slot width divides 64.
     */
    unsigned maskedSixtyFourths(unsigned slot) const
    {
        return frac64[slot];
    }

    FaultSpaceSummary summarize() const;

  private:
    const Function &fn;
    RangeAnalysis ra;
    LivenessAnalysis live;
    std::vector<const Value *> slotDef; //!< defining value per slot
    std::vector<uint64_t> masked;
    std::vector<uint8_t> widths;
    std::vector<uint8_t> frac64;
};

/** Fault-space classification for every function of a module. */
class ModuleFaultSpace
{
  public:
    explicit ModuleFaultSpace(const Module &m);

    const FunctionFaultSpace *of(const Function *fn) const
    {
        auto it = fns.find(fn);
        return it == fns.end() ? nullptr : it->second.get();
    }

    FaultSpaceSummary summarize() const;

  private:
    std::map<const Function *, std::unique_ptr<FunctionFaultSpace>>
        fns;
};

/**
 * Can flipping @p bit of the register operand at position @p pos
 * provably never change @p check 's verdict (or only change it
 * unobservably — a never-passing check fires fault-free too and is
 * calibration-disabled)? Used by the masking fixpoint and by
 * protection_audit's operand-fault-space flag.
 */
bool checkFlipInvariant(const Instruction &check, unsigned pos,
                        unsigned bit, const RangeAnalysis &ra);

/**
 * True when every bit of every register operand of @p check satisfies
 * checkFlipInvariant — the check's entire operand fault-space is
 * statically masked, a strictly stronger property than the per-check
 * "vacuous" flag (which reasons about arbitrary corruption of the
 * checked instruction's operands, not single-bit flips of the checked
 * value itself).
 */
bool checkOperandFaultSpaceMasked(const Instruction &check,
                                  const RangeAnalysis &ra);

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_FAULT_SPACE_HH
