/**
 * @file
 * CFG cleanup utilities: unreachable-block elimination and trivially
 * dead code elimination. Both are required before SSA promotion and
 * after the front end, which can leave dead join blocks behind.
 */

#ifndef SOFTCHECK_ANALYSIS_CFG_UTILS_HH
#define SOFTCHECK_ANALYSIS_CFG_UTILS_HH

#include "ir/function.hh"

namespace softcheck
{

/**
 * Delete blocks not reachable from the entry. Also prunes phi incoming
 * entries that referenced removed predecessors.
 *
 * @return number of blocks removed
 */
unsigned removeUnreachableBlocks(Function &fn);

/**
 * Iteratively delete instructions with no users and no side effects
 * (stores, calls, terminators, and checks are side-effecting).
 *
 * @return number of instructions removed
 */
unsigned eliminateDeadCode(Function &fn);

/** True if removing @p inst (when unused) changes program behaviour. */
bool hasSideEffects(const Instruction &inst);

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_CFG_UTILS_HH
