/**
 * @file
 * Producer-chain computation (paper Sec. III-B): the recursive use-def
 * traversal that gathers the instructions feeding a value, terminating
 * at loads (to save memory traffic), at phi nodes, at calls, and at any
 * instruction the caller's predicate stops at (Optimization 2 hooks in
 * through the predicate).
 */

#ifndef SOFTCHECK_ANALYSIS_PRODUCER_CHAIN_HH
#define SOFTCHECK_ANALYSIS_PRODUCER_CHAIN_HH

#include <functional>
#include <set>
#include <vector>

#include "ir/instruction.hh"

namespace softcheck
{

/** How a producer-chain traversal treats a given instruction. */
enum class ChainDisposition
{
    /** Include in the chain and recurse into its operands. */
    Include,
    /** Do not include; the original value is used as-is (chain edge). */
    Terminate,
};

struct ProducerChainOptions
{
    /**
     * Optional extra terminator: return true to cut the chain at this
     * instruction (used by Optimization 2 to stop at check-amenable
     * values).
     */
    std::function<bool(const Instruction &)> stopAt;
};

/**
 * Classify whether @p inst can be part of a duplicated producer chain.
 * Pure value-producing operations qualify; loads, calls, phis, allocas
 * and side-effecting instructions terminate the chain.
 */
ChainDisposition chainDisposition(const Instruction &inst);

/**
 * Compute the producer chain of @p root.
 *
 * The result is in def-before-use (topological) order and includes
 * @p root itself when @p root is chainable. Values at which traversal
 * stopped are *not* in the result.
 */
std::vector<Instruction *>
producerChain(Instruction *root, const ProducerChainOptions &opts = {});

/** Instructions where the traversal of @p root's chain was cut by the
 * stopAt predicate (Optimization 2 check sites). */
std::vector<Instruction *>
chainStopPoints(Instruction *root, const ProducerChainOptions &opts);

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_PRODUCER_CHAIN_HH
