/**
 * @file
 * Natural-loop detection from back edges (edges n -> h where h
 * dominates n). Loops with a shared header are merged. Provides the
 * queries the hardening passes need: loop membership, headers, latches,
 * and nesting depth.
 */

#ifndef SOFTCHECK_ANALYSIS_LOOP_INFO_HH
#define SOFTCHECK_ANALYSIS_LOOP_INFO_HH

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "analysis/dominators.hh"

namespace softcheck
{

/** One natural loop. */
struct Loop
{
    BasicBlock *header = nullptr;
    /** Blocks with a back edge to the header. */
    std::vector<BasicBlock *> latches;
    /** All blocks in the loop (header included). */
    std::set<BasicBlock *> blocks;
    /** Enclosing loop; null for top-level loops. */
    Loop *parent = nullptr;
    /** 1 for top-level loops, +1 per nesting level. */
    unsigned depth = 1;

    bool contains(const BasicBlock *bb) const
    {
        return blocks.count(const_cast<BasicBlock *>(bb)) != 0;
    }
};

class LoopInfo
{
  public:
    LoopInfo(const Function &fn, const DominatorTree &dt);

    const std::vector<std::unique_ptr<Loop>> &loops() const { return lps; }

    /** Innermost loop containing @p bb; null if none. */
    Loop *loopFor(const BasicBlock *bb) const;

    /** True if @p bb is the header of some loop. */
    bool isHeader(const BasicBlock *bb) const;

  private:
    std::vector<std::unique_ptr<Loop>> lps;
    std::map<const BasicBlock *, Loop *> innermost;
};

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_LOOP_INFO_HH
