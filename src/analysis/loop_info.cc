#include "analysis/loop_info.hh"

#include <algorithm>

#include "support/error.hh"

namespace softcheck
{

LoopInfo::LoopInfo(const Function &fn, const DominatorTree &dt)
{
    auto pred_map = fn.predecessors();

    // Gather back edges grouped by header.
    std::map<BasicBlock *, std::vector<BasicBlock *>> back_edges;
    for (const auto &bb : fn) {
        if (!dt.reachable(bb.get()))
            continue;
        for (BasicBlock *succ : bb->successors()) {
            if (dt.dominates(succ, bb.get()))
                back_edges[succ].push_back(bb.get());
        }
    }

    // Natural loop of each header: header plus everything that reaches a
    // latch without passing through the header (reverse flood fill).
    for (auto &[header, latches] : back_edges) {
        auto loop = std::make_unique<Loop>();
        loop->header = header;
        loop->latches = latches;
        loop->blocks.insert(header);

        std::vector<BasicBlock *> work(latches.begin(), latches.end());
        while (!work.empty()) {
            BasicBlock *bb = work.back();
            work.pop_back();
            if (!loop->blocks.insert(bb).second)
                continue;
            for (BasicBlock *p : pred_map.at(bb)) {
                if (dt.reachable(p))
                    work.push_back(p);
            }
        }
        lps.push_back(std::move(loop));
    }

    // Nesting: parent = the smallest strictly-larger loop containing the
    // header. Sorting by size makes the innermost-first assignment easy.
    std::sort(lps.begin(), lps.end(),
              [](const auto &a, const auto &b) {
                  return a->blocks.size() < b->blocks.size();
              });
    for (std::size_t i = 0; i < lps.size(); ++i) {
        for (std::size_t j = i + 1; j < lps.size(); ++j) {
            if (lps[j]->blocks.size() > lps[i]->blocks.size() &&
                lps[j]->contains(lps[i]->header)) {
                lps[i]->parent = lps[j].get();
                break;
            }
        }
    }
    for (auto &loop : lps) {
        unsigned d = 1;
        for (Loop *p = loop->parent; p; p = p->parent)
            ++d;
        loop->depth = d;
    }

    // Innermost-loop map (smallest loop wins; lps is size-sorted).
    for (auto &loop : lps) {
        for (BasicBlock *bb : loop->blocks) {
            if (!innermost.count(bb))
                innermost[bb] = loop.get();
        }
    }
}

Loop *
LoopInfo::loopFor(const BasicBlock *bb) const
{
    auto it = innermost.find(bb);
    return it == innermost.end() ? nullptr : it->second;
}

bool
LoopInfo::isHeader(const BasicBlock *bb) const
{
    Loop *loop = loopFor(bb);
    return loop && loop->header == bb;
}

} // namespace softcheck
