#include "analysis/mem2reg.hh"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "analysis/cfg_utils.hh"
#include "analysis/dominators.hh"
#include "ir/module.hh"
#include "support/error.hh"

namespace softcheck
{

namespace
{

bool
isPromotable(const Instruction &alloca_inst)
{
    if (alloca_inst.opcode() != Opcode::Alloca)
        return false;
    const auto *count =
        dynamic_cast<const ConstantInt *>(alloca_inst.operand(0));
    if (!count || count->rawValue() != 1)
        return false;
    for (const Instruction *user : alloca_inst.users()) {
        if (user->opcode() == Opcode::Load)
            continue;
        if (user->opcode() == Opcode::Store &&
            user->operand(1) == &alloca_inst &&
            user->operand(0) != &alloca_inst)
            continue;
        return false;
    }
    return true;
}

/** Zero constant used for loads that precede any store. */
Value *
zeroFor(Module &m, Type t)
{
    if (t.isFloat())
        return m.getConstFloat(t, 0.0);
    return m.getConstInt(t, uint64_t{0});
}

class Promoter
{
  public:
    Promoter(Function &fn, const std::vector<Instruction *> &allocas)
        : func(fn), mod(*fn.parent()), dt(fn), targets(allocas)
    {
        for (std::size_t i = 0; i < targets.size(); ++i)
            allocaIndex[targets[i]] = i;
    }

    void
    run()
    {
        placePhis();
        std::vector<Value *> current(targets.size(), nullptr);
        rename(func.entry(), current);
        cleanup();
    }

  private:
    void
    placePhis()
    {
        for (std::size_t a = 0; a < targets.size(); ++a) {
            const Type elem = targets[a]->elementType();
            std::set<BasicBlock *> def_blocks;
            for (Instruction *user : targets[a]->users()) {
                if (user->opcode() == Opcode::Store)
                    def_blocks.insert(user->parent());
            }
            // Iterated dominance frontier.
            std::vector<BasicBlock *> work(def_blocks.begin(),
                                           def_blocks.end());
            std::set<BasicBlock *> has_phi;
            while (!work.empty()) {
                BasicBlock *bb = work.back();
                work.pop_back();
                for (BasicBlock *df : dt.frontier(bb)) {
                    if (!has_phi.insert(df).second)
                        continue;
                    auto phi = std::make_unique<Instruction>(
                        Opcode::Phi, elem,
                        targets[a]->name().empty()
                            ? std::string{}
                            : targets[a]->name() + ".ph");
                    Instruction *raw =
                        df->insert(df->begin(), std::move(phi));
                    phiAlloca[raw] = a;
                    if (!def_blocks.count(df))
                        work.push_back(df);
                }
            }
        }
    }

    void
    rename(BasicBlock *bb, std::vector<Value *> current)
    {
        // Inserted phis at the top of the block define new values.
        for (Instruction *phi : bb->phis()) {
            auto it = phiAlloca.find(phi);
            if (it != phiAlloca.end())
                current[it->second] = phi;
        }

        for (auto &inst_ptr : *bb) {
            Instruction *inst = inst_ptr.get();
            if (inst->opcode() == Opcode::Load) {
                auto it = allocaIndex.find(inst->operand(0));
                if (it == allocaIndex.end())
                    continue;
                Value *v = current[it->second];
                if (!v)
                    v = zeroFor(mod, inst->type());
                inst->replaceAllUsesWith(v);
                toDelete.push_back(inst);
            } else if (inst->opcode() == Opcode::Store) {
                auto it = allocaIndex.find(inst->operand(1));
                if (it == allocaIndex.end())
                    continue;
                current[it->second] = inst->operand(0);
                toDelete.push_back(inst);
            }
        }

        // Feed successors' inserted phis.
        std::set<BasicBlock *> seen;
        for (BasicBlock *succ : bb->successors()) {
            if (!seen.insert(succ).second)
                continue;
            for (Instruction *phi : succ->phis()) {
                auto it = phiAlloca.find(phi);
                if (it == phiAlloca.end())
                    continue;
                Value *v = current[it->second];
                if (!v)
                    v = zeroFor(mod, phi->type());
                phi->addIncoming(v, bb);
            }
        }

        for (BasicBlock *child : dt.children(bb))
            rename(child, current);
    }

    void
    cleanup()
    {
        for (Instruction *inst : toDelete) {
            inst->dropAllOperands();
            inst->parent()->erase(inst);
        }
        for (Instruction *alloca_inst : targets) {
            scAssert(alloca_inst->users().empty(),
                     "promoted alloca still has users");
            alloca_inst->dropAllOperands();
            alloca_inst->parent()->erase(alloca_inst);
        }
    }

    Function &func;
    Module &mod;
    DominatorTree dt;
    std::vector<Instruction *> targets;
    std::map<const Value *, std::size_t> allocaIndex;
    std::map<const Instruction *, std::size_t> phiAlloca;
    std::vector<Instruction *> toDelete;
};

} // namespace

unsigned
promoteAllocas(Function &fn)
{
    if (!fn.entry())
        return 0;

    removeUnreachableBlocks(fn);

    std::vector<Instruction *> allocas;
    for (auto &bb : fn) {
        for (auto &inst : *bb) {
            if (isPromotable(*inst))
                allocas.push_back(inst.get());
        }
    }
    if (allocas.empty())
        return 0;

    Promoter(fn, allocas).run();
    eliminateDeadCode(fn);
    return static_cast<unsigned>(allocas.size());
}

} // namespace softcheck
