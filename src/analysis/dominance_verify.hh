/**
 * @file
 * SSA dominance verification: every use must be dominated by its
 * definition (with the usual phi exception, where the incoming value
 * must dominate the end of the incoming block).
 */

#ifndef SOFTCHECK_ANALYSIS_DOMINANCE_VERIFY_HH
#define SOFTCHECK_ANALYSIS_DOMINANCE_VERIFY_HH

#include <string>
#include <vector>

#include "ir/function.hh"

namespace softcheck
{

/**
 * Check SSA dominance for @p fn. Calls Function::renumber() to refresh
 * instruction ids. Returns a list of violations (empty = valid).
 */
std::vector<std::string> verifyDominance(Function &fn);

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_DOMINANCE_VERIFY_HH
