/**
 * @file
 * Thin CLI for the campaign daemon (src/service/daemon.hh).
 *
 *   softcheck-serve serve --socket PATH [--cache DIR] [--threads N]
 *                         [--max-jobs N]
 *       Run the daemon in the foreground until a SHUTDOWN request.
 *
 *   softcheck-serve submit --socket PATH key=value ...
 *       Send one SUITE request (tokens are forwarded verbatim; see
 *       daemon.hh for the key set) and print the response.
 *
 *   softcheck-serve ping|stats|shutdown --socket PATH
 *
 * Exit status: 0 on success, 1 on usage errors, daemon-side ERR
 * responses, or an unreachable daemon.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "service/daemon.hh"
#include "support/error.hh"

using namespace softcheck;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: softcheck-serve serve --socket PATH [--cache DIR]\n"
        "                             [--threads N] [--max-jobs N]\n"
        "       softcheck-serve submit --socket PATH key=value ...\n"
        "       softcheck-serve ping|stats|shutdown --socket PATH\n");
}

int
runServe(const std::vector<std::string> &args)
{
    service::DaemonConfig cfg;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&]() -> const std::string & {
            if (++i >= args.size())
                scFatal(a, " needs a value");
            return args[i];
        };
        if (a == "--socket")
            cfg.socketPath = next();
        else if (a == "--cache")
            cfg.cacheDir = next();
        else if (a == "--threads")
            cfg.threads = static_cast<unsigned>(std::stoul(next()));
        else if (a == "--max-jobs")
            cfg.maxJobs = static_cast<unsigned>(std::stoul(next()));
        else
            scFatal("unknown option ", a);
    }
    if (cfg.socketPath.empty())
        scFatal("serve needs --socket");
    service::CampaignDaemon daemon(cfg);
    daemon.bind();
    std::printf("softcheck-serve: listening on %s%s%s\n",
                cfg.socketPath.c_str(),
                cfg.cacheDir.empty() ? "" : ", cache ",
                cfg.cacheDir.c_str());
    std::fflush(stdout);
    daemon.serve();
    std::printf("softcheck-serve: shut down\n");
    return 0;
}

int
runRequest(const std::string &verb, const std::vector<std::string> &args)
{
    std::string socket_path;
    std::vector<std::string> extra;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--socket") {
            if (++i >= args.size())
                scFatal("--socket needs a value");
            socket_path = args[i];
        } else {
            extra.push_back(args[i]);
        }
    }
    if (socket_path.empty())
        scFatal(verb, " needs --socket");

    std::string request;
    if (verb == "submit") {
        request = "SUITE";
        for (const std::string &t : extra)
            request += " " + t;
    } else if (verb == "ping") {
        request = "PING";
    } else if (verb == "stats") {
        request = "STATS";
    } else if (verb == "shutdown") {
        request = "SHUTDOWN";
    } else {
        scFatal("unknown subcommand ", verb);
    }

    const std::string response =
        service::daemonRequest(socket_path, request);
    std::fputs(response.c_str(), stdout);
    if (response.empty() || response.rfind("ERR", 0) == 0)
        return 1;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string verb = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (verb == "serve")
            return runServe(args);
        return runRequest(verb, args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "softcheck-serve: %s\n", e.what());
        return 1;
    }
}
