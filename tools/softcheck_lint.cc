/**
 * @file
 * softcheck-lint — static linter for SoftCheck-hardened programs.
 *
 * Compiles a MiniLang kernel (a registered benchmark or a source file)
 * or parses a textual IR module, optionally applies a hardening mode,
 * and then runs the full static tool stack over the result:
 *
 *   1. structural IR verification (ir/verifier),
 *   2. SSA dominance verification (analysis/dominance_verify),
 *   3. the protection audit (analysis/protection_audit): duplicate
 *      isomorphism, shadow-phi wiring, cut-site checks, check-operand
 *      dominance, check-id uniqueness — plus the range-based check
 *      classification (vacuous / false-positive risk),
 *   4. optionally (--ranges) a per-value static range report.
 *
 * Exits 0 when every linted configuration is clean, 1 when any
 * violation was found, 2 on usage or compilation errors.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dominance_verify.hh"
#include "analysis/fault_space.hh"
#include "analysis/protection_audit.hh"
#include "analysis/range_analysis.hh"
#include "fault/campaign_internal.hh"
#include "frontend/compile.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "support/error.hh"
#include "support/text.hh"
#include "workloads/workload.hh"

using namespace softcheck;

namespace
{

struct LintOptions
{
    std::vector<HardeningMode> modes;
    bool allWorkloads = false;
    bool elideVacuous = false;
    bool printRanges = false;
    bool faultSpace = false;
    bool dynOpcodeMix = false;
    bool verbose = false;
    bool enableOpt1 = true;
    bool enableOpt2 = true;
    std::string workload;
    std::string file;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] (--workload NAME | --all | FILE)\n"
        "\n"
        "Lint a benchmark kernel, a MiniLang source file (.ml), or a\n"
        "textual IR module (any other extension; linted as-is).\n"
        "\n"
        "options:\n"
        "  --mode M         original | duponly | dupvalchks | fulldup\n"
        "                   | all (default: all)\n"
        "  --no-opt1        disable deepest-point value checks\n"
        "  --no-opt2        disable duplicate-chain cutting\n"
        "  --elide-vacuous  elide audit-proven vacuous checks\n"
        "  --ranges         print the static value-range report\n"
        "  --fault-space    print the static fault-space partition\n"
        "                   (site census: %% dead / %% masked, active\n"
        "                   equivalence classes and their size\n"
        "                   histogram) plus the overlap between\n"
        "                   operand-masked and vacuous checks\n"
        "  --dyn-opcode-mix run the test input and print the dynamic\n"
        "                   opcode / fallthrough-pair histogram plus\n"
        "                   the lockstep-eligible fraction (straight-\n"
        "                   line runs between conditional branches)\n"
        "                   (registered benchmarks only)\n"
        "  -v, --verbose    per-check classification detail\n",
        argv0);
    return 2;
}

bool
parseMode(const std::string &s, std::vector<HardeningMode> &out)
{
    if (s == "original" || s == "baseline") {
        out = {HardeningMode::Original};
    } else if (s == "duponly" || s == "dup") {
        out = {HardeningMode::DupOnly};
    } else if (s == "dupvalchks" || s == "softcheck") {
        out = {HardeningMode::DupValChks};
    } else if (s == "fulldup") {
        out = {HardeningMode::FullDup};
    } else if (s == "all") {
        out = {HardeningMode::Original, HardeningMode::DupOnly,
               HardeningMode::DupValChks, HardeningMode::FullDup};
    } else {
        return false;
    }
    return true;
}

/** One configuration's lint outcome. */
struct LintOutcome
{
    unsigned problems = 0; //!< verifier + dominance + audit violations
    AuditResult audit;
    HardeningReport report;
};

void
printRangeReport(const Function &fn, const RangeAnalysis &ra)
{
    std::printf("  ranges of @%s:\n", fn.name().c_str());
    for (const auto &bb : fn) {
        for (const auto &inst : *bb) {
            if (!inst->hasResult())
                continue;
            std::string r = inst->type().isInteger()
                                ? ra.intRange(inst.get()).str()
                                : inst->type().isFloat()
                                      ? ra.floatRange(inst.get()).str()
                                      : std::string("ptr");
            std::printf("    %%%-18s %s\n",
                        inst->name().empty()
                            ? strformat("t%u", inst->id()).c_str()
                            : inst->name().c_str(),
                        r.c_str());
        }
    }
}

/**
 * Static fault-space partition of the (possibly hardened) module: the
 * (instruction, slot, bit) site census over the dead/masked/active
 * lattice, the active-site equivalence classes, and the overlap
 * between the two "useless check" analyses (range-based vacuity vs.
 * bit-level operand masking — independent arguments, so agreement is
 * worth surfacing).
 */
void
printFaultSpaceReport(const Module &m, const AuditResult &audit)
{
    const ModuleFaultSpace mfs(m);
    const FaultSpaceSummary s = mfs.summarize();
    std::printf("  fault-space: sites=%llu dead=%.1f%% masked=%.1f%% "
                "active=%llu classes=%llu largest=%llu\n",
                static_cast<unsigned long long>(s.totalSites),
                s.deadPct(), s.maskedPct(),
                static_cast<unsigned long long>(s.activeSites),
                static_cast<unsigned long long>(s.classCount),
                static_cast<unsigned long long>(s.largestClass));
    if (s.classCount) {
        std::printf("  class sizes:");
        for (std::size_t k = 0; k < s.classSizeHist.size(); ++k) {
            if (!s.classSizeHist[k])
                continue;
            std::printf(" [%llu,%llu)=%llu",
                        static_cast<unsigned long long>(1ULL << k),
                        static_cast<unsigned long long>(2ULL << k),
                        static_cast<unsigned long long>(
                            s.classSizeHist[k]));
        }
        std::printf("\n");
    }
    if (!audit.checks.empty())
        std::printf("  op-masked checks: %u of %zu (vacuous overlap "
                    "%u of %u vacuous)\n",
                    audit.operandMaskedChecks(), audit.checks.size(),
                    audit.vacuousAndOperandMasked(),
                    audit.vacuousChecks());
}

/** Run the static tool stack over an already-hardened module. */
LintOutcome
lintModule(Module &m, const AuditOptions &audit_opts,
           const LintOptions &opts, const char *what)
{
    LintOutcome out;

    for (const std::string &p : verifyModule(m)) {
        std::printf("  VERIFIER %s\n", p.c_str());
        ++out.problems;
    }
    for (Function *fn : m.functions()) {
        for (const std::string &p : verifyDominance(*fn)) {
            std::printf("  DOMINANCE [%s] %s\n", fn->name().c_str(),
                        p.c_str());
            ++out.problems;
        }
    }

    out.audit = auditModule(m, audit_opts);
    for (const AuditViolation &v : out.audit.violations) {
        std::printf("  AUDIT [%s] %s\n",
                    auditViolationKindName(v.kind), v.message.c_str());
        ++out.problems;
    }

    if (opts.verbose) {
        for (const CheckReport &cr : out.audit.checks) {
            if (!cr.vacuous && !cr.fpRisk &&
                !cr.operandFaultSpaceMasked)
                continue;
            std::printf("  check #%d:%s%s%s flow=%s arbitrary=%s\n",
                        cr.checkId, cr.vacuous ? " vacuous" : "",
                        cr.fpRisk ? " fp-risk" : "",
                        cr.operandFaultSpaceMasked ? " op-masked" : "",
                        cr.flowRange.str().c_str(),
                        cr.arbitraryRange.str().c_str());
        }
    }
    if (opts.printRanges) {
        for (Function *fn : m.functions()) {
            RangeAnalysis ra(*fn);
            printRangeReport(*fn, ra);
        }
    }
    if (opts.faultSpace)
        printFaultSpaceReport(m, out.audit);

    const ProtectionCounts &pc = out.audit.counts;
    std::printf("%-32s %-5s %s checks=%zu vacuous=%u fp_risk=%u "
                "op_masked=%u\n",
                what, out.problems ? "FAIL" : "ok", pc.str().c_str(),
                out.audit.checks.size(), out.audit.vacuousChecks(),
                out.audit.fpRiskChecks(),
                out.audit.operandMaskedChecks());
    return out;
}

/**
 * Fallthrough pairs the threaded tier fuses into superinstructions
 * (see interp/threaded_exec.hh). Marked '*' in the pair histogram so
 * the dynamic coverage of the fusion set is visible at a glance.
 */
bool
isFusablePair(Opcode prev, Opcode cur)
{
    return (prev == Opcode::ICmp && cur == Opcode::CondBr) ||
           (prev == Opcode::Gep &&
            (cur == Opcode::Load || cur == Opcode::Store));
}

/**
 * Run one benchmark's test input under one hardening mode with the
 * interpreter's DynMixSink attached, and print the dynamic opcode and
 * fallthrough-pair histograms. This is the measurement that motivates
 * the threaded tier's superinstruction set: a pair worth fusing is one
 * that is both frequent and adjacent in the instruction stream.
 */
unsigned
dynMixWorkload(const std::string &name, HardeningMode mode,
               const LintOptions &opts)
{
    const Workload &w = getWorkload(name);
    auto mod = compileMiniLang(w.source, w.name);
    assignProfileSites(*mod);

    ProfileData profile;
    const ProfileData *pp = nullptr;
    if (mode == HardeningMode::DupValChks) {
        CampaignConfig cfg;
        cfg.workload = name;
        profile = campaign_detail::collectProfile(w, cfg, true);
        pp = &profile;
    }

    HardeningOptions hopts;
    hopts.mode = mode;
    hopts.enableOpt1 = opts.enableOpt1;
    hopts.enableOpt2 = opts.enableOpt2;
    hopts.elideVacuousChecks = opts.elideVacuous;
    hardenModule(*mod, hopts, pp);

    ExecModule em(*mod);
    auto spec = w.makeInput(false);
    auto run = prepareRun(spec);

    DynMixSink sink;
    std::vector<uint64_t> fail_counts(em.numCheckIds(), 0);
    ExecOptions eopts;
    eopts.checkMode = CheckMode::Record;
    eopts.checkFailCounts = &fail_counts;
    eopts.dynMix = &sink;
    Interpreter interp(em, *run.mem);
    auto r = interp.run(em.functionIndex(w.entry), run.args, eopts);
    if (!r.ok()) {
        std::printf("%s[%s]  dyn-mix run FAILED (term=%u)\n",
                    name.c_str(), hardeningModeName(mode),
                    static_cast<unsigned>(r.term));
        return 1;
    }

    std::printf("%s[%s]  %llu dyn instrs\n", name.c_str(),
                hardeningModeName(mode),
                static_cast<unsigned long long>(sink.total));

    std::vector<unsigned> ops;
    for (unsigned op = 0; op < kNumIrOpcodes; ++op)
        if (sink.opcodeCounts[op] > 0)
            ops.push_back(op);
    std::sort(ops.begin(), ops.end(), [&](unsigned a, unsigned b) {
        return sink.opcodeCounts[a] > sink.opcodeCounts[b];
    });
    const unsigned top = opts.verbose ? static_cast<unsigned>(ops.size())
                                      : std::min<unsigned>(8, ops.size());
    for (unsigned i = 0; i < top; ++i) {
        const unsigned op = ops[i];
        std::printf("  %-10s %12llu  %5.1f%%\n",
                    opcodeName(static_cast<Opcode>(op)),
                    static_cast<unsigned long long>(
                        sink.opcodeCounts[op]),
                    100.0 * static_cast<double>(sink.opcodeCounts[op]) /
                        static_cast<double>(sink.total));
    }

    std::vector<std::pair<unsigned, unsigned>> pairs;
    for (unsigned p = 0; p < kNumIrOpcodes; ++p)
        for (unsigned c = 0; c < kNumIrOpcodes; ++c)
            if (sink.pairCounts[std::size_t{p} * kNumIrOpcodes + c] > 0)
                pairs.emplace_back(p, c);
    std::sort(pairs.begin(), pairs.end(), [&](auto a, auto b) {
        return sink.pairCounts[std::size_t{a.first} * kNumIrOpcodes +
                               a.second] >
               sink.pairCounts[std::size_t{b.first} * kNumIrOpcodes +
                               b.second];
    });
    uint64_t fusable = 0;
    for (const auto &[p, c] : pairs)
        if (isFusablePair(static_cast<Opcode>(p),
                          static_cast<Opcode>(c)))
            fusable +=
                sink.pairCounts[std::size_t{p} * kNumIrOpcodes + c];
    const unsigned ptop =
        opts.verbose ? static_cast<unsigned>(pairs.size())
                     : std::min<unsigned>(6, pairs.size());
    for (unsigned i = 0; i < ptop; ++i) {
        const auto [p, c] = pairs[i];
        const uint64_t n =
            sink.pairCounts[std::size_t{p} * kNumIrOpcodes + c];
        std::printf("  %s%-8s -> %-8s %10llu  %5.1f%%\n",
                    isFusablePair(static_cast<Opcode>(p),
                                  static_cast<Opcode>(c))
                        ? "*"
                        : " ",
                    opcodeName(static_cast<Opcode>(p)),
                    opcodeName(static_cast<Opcode>(c)),
                    static_cast<unsigned long long>(n),
                    100.0 * static_cast<double>(n) /
                        static_cast<double>(sink.total));
    }
    std::printf("  fusable pairs cover %.1f%% of dyn instrs "
                "(2 instrs/pair)\n",
                200.0 * static_cast<double>(fusable) /
                    static_cast<double>(sink.total));

    // Lockstep-tier eligibility. A lane group stays in lockstep while
    // every lane takes the same control path; each dynamic conditional
    // branch is a potential peel point (data-dependent direction), so
    // the mean straight-line run between them is the expected lockstep
    // window between peel opportunities, and everything that is not a
    // conditional branch is eligible to be batched. Unconditional
    // branches, calls and returns keep shared control and do not end a
    // window.
    const uint64_t condbr =
        sink.opcodeCounts[static_cast<unsigned>(Opcode::CondBr)];
    const double eligible =
        100.0 * static_cast<double>(sink.total - condbr) /
        static_cast<double>(sink.total);
    std::printf("  lockstep: CondBr %.1f%% of dyn instrs -> mean "
                "straight-line run %.1f instrs, eligible fraction "
                "%.1f%%\n",
                100.0 * static_cast<double>(condbr) /
                    static_cast<double>(sink.total),
                condbr > 0 ? static_cast<double>(sink.total) /
                                 static_cast<double>(condbr)
                           : static_cast<double>(sink.total),
                eligible);
    return 0;
}

/** Lint one registered benchmark under one hardening mode. */
unsigned
lintWorkload(const std::string &name, HardeningMode mode,
             const LintOptions &opts)
{
    const Workload &w = getWorkload(name);
    auto mod = compileMiniLang(w.source, w.name);
    assignProfileSites(*mod);

    ProfileData profile;
    const ProfileData *pp = nullptr;
    if (mode == HardeningMode::DupValChks) {
        CampaignConfig cfg;
        cfg.workload = name;
        profile = campaign_detail::collectProfile(w, cfg, true);
        pp = &profile;
    }

    HardeningOptions hopts;
    hopts.mode = mode;
    hopts.enableOpt1 = opts.enableOpt1;
    hopts.enableOpt2 = opts.enableOpt2;
    hopts.elideVacuousChecks = opts.elideVacuous;
    HardeningReport report = hardenModule(*mod, hopts, pp);

    AuditOptions aopts;
    aopts.allowUncheckedCuts = report.uncheckedCutSites;
    std::string what =
        strformat("%s[%s]", name.c_str(), hardeningModeName(mode));
    LintOutcome out = lintModule(*mod, aopts, opts, what.c_str());
    if (opts.verbose)
        std::printf("  %s\n", report.str().c_str());
    return out.problems;
}

unsigned
lintFile(const std::string &path, HardeningMode mode,
         const LintOptions &opts)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "softcheck-lint: cannot open %s\n",
                     path.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    const bool minilang = path.size() > 3 &&
                          path.compare(path.size() - 3, 3, ".ml") == 0;
    std::unique_ptr<Module> mod;
    AuditOptions aopts;
    if (minilang) {
        mod = compileMiniLang(text, path);
        if (mode == HardeningMode::DupValChks)
            scFatal("mode dupvalchks needs a value profile; lint a "
                    "registered benchmark (--workload) instead");
        HardeningOptions hopts;
        hopts.mode = mode;
        hopts.enableOpt1 = opts.enableOpt1;
        hopts.enableOpt2 = opts.enableOpt2;
        hopts.elideVacuousChecks = opts.elideVacuous;
        HardeningReport report = hardenModule(*mod, hopts, nullptr);
        aopts.allowUncheckedCuts = report.uncheckedCutSites;
    } else {
        // Textual IR: lint exactly what is on disk (it may already be
        // hardened; parseIR verifies and renumbers).
        mod = parseIR(text, path);
    }
    return lintModule(*mod, aopts, opts, path.c_str()).problems;
}

} // namespace

int
main(int argc, char **argv)
{
    LintOptions opts;
    parseMode("all", opts.modes);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--mode") {
            if (++i >= argc || !parseMode(argv[i], opts.modes))
                return usage(argv[0]);
        } else if (arg == "--workload") {
            if (++i >= argc)
                return usage(argv[0]);
            opts.workload = argv[i];
        } else if (arg == "--all") {
            opts.allWorkloads = true;
        } else if (arg == "--no-opt1") {
            opts.enableOpt1 = false;
        } else if (arg == "--no-opt2") {
            opts.enableOpt2 = false;
        } else if (arg == "--elide-vacuous") {
            opts.elideVacuous = true;
        } else if (arg == "--ranges") {
            opts.printRanges = true;
        } else if (arg == "--fault-space") {
            opts.faultSpace = true;
        } else if (arg == "--dyn-opcode-mix") {
            opts.dynOpcodeMix = true;
        } else if (arg == "-v" || arg == "--verbose") {
            opts.verbose = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else if (opts.file.empty()) {
            opts.file = arg;
        } else {
            return usage(argv[0]);
        }
    }

    std::vector<std::string> workloads;
    if (opts.allWorkloads) {
        for (const Workload *w : allWorkloads())
            workloads.push_back(w->name);
    } else if (!opts.workload.empty()) {
        workloads.push_back(opts.workload);
    } else if (opts.file.empty()) {
        return usage(argv[0]);
    }

    if (opts.dynOpcodeMix && !opts.file.empty()) {
        std::fprintf(stderr, "softcheck-lint: --dyn-opcode-mix needs a "
                             "registered benchmark (--workload/--all)\n");
        return 2;
    }

    unsigned problems = 0;
    try {
        if (!opts.file.empty()) {
            const bool minilang =
                opts.file.size() > 3 &&
                opts.file.compare(opts.file.size() - 3, 3, ".ml") == 0;
            if (!minilang) {
                // Textual IR is linted as-is; modes don't apply.
                problems +=
                    lintFile(opts.file, HardeningMode::Original, opts);
            } else {
                for (HardeningMode mode : opts.modes) {
                    if (mode == HardeningMode::DupValChks &&
                        opts.modes.size() > 1) {
                        std::fprintf(
                            stderr,
                            "softcheck-lint: skipping dupvalchks for "
                            "%s (needs a value profile)\n",
                            opts.file.c_str());
                        continue;
                    }
                    problems += lintFile(opts.file, mode, opts);
                }
            }
        } else if (opts.dynOpcodeMix) {
            for (const std::string &name : workloads)
                for (HardeningMode mode : opts.modes)
                    problems += dynMixWorkload(name, mode, opts);
        } else {
            for (const std::string &name : workloads)
                for (HardeningMode mode : opts.modes)
                    problems += lintWorkload(name, mode, opts);
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "softcheck-lint: %s\n", e.what());
        return 2;
    }

    if (problems) {
        std::fprintf(stderr, "softcheck-lint: %u violation%s\n",
                     problems, problems == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
