/**
 * @file
 * Soft-error robustness study of the two machine-learning benchmarks
 * (kmeans, svm): runs full fault-injection campaigns in each hardening
 * configuration and prints a compact comparison — the library's
 * top-level API (fault/campaign.hh) in its intended use.
 *
 * Build & run:  ./build/examples/ml_robustness [trials]
 */

#include <cstdio>
#include <cstdlib>

#include "fault/campaign.hh"

using namespace softcheck;

int
main(int argc, char **argv)
{
    const unsigned trials =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 300;

    for (const char *name : {"kmeans", "svm"}) {
        std::printf("\n%s: %u injection trials per configuration\n",
                    name, trials);
        std::printf("%-16s %9s %6s %6s %7s %9s\n", "config",
                    "overhead", "USDC%", "SDC%", "cov%", "checks");
        for (auto mode :
             {HardeningMode::Original, HardeningMode::DupOnly,
              HardeningMode::DupValChks, HardeningMode::FullDup}) {
            CampaignConfig cfg;
            cfg.workload = name;
            cfg.mode = mode;
            cfg.trials = trials;
            cfg.seed = 99;
            auto r = runCampaign(cfg);
            std::printf("%-16s %8.1f%% %6.2f %6.2f %7.1f %9u\n",
                        hardeningModeName(mode), 100.0 * r.overhead(),
                        r.pct(Outcome::USDC), r.sdcPct(),
                        r.coveragePct(), r.totalCheckCount);
        }
    }
    std::printf("\nThe selective scheme (Dup + val chks) should reach "
                "full-duplication-level USDC\nprotection at a fraction "
                "of its overhead (paper: 1.2%% vs 1.4%% USDC at 19.5%% "
                "vs 57%% overhead).\n");
    return 0;
}
