/**
 * @file
 * Quickstart: the whole SoftCheck flow on a small kernel in ~80 lines.
 *
 *   1. compile a MiniLang kernel to SSA IR,
 *   2. value-profile it on a training input (paper Algorithm 1/2),
 *   3. harden it (state-variable duplication + expected-value checks),
 *   4. inject register bit flips and watch the checks catch them.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "frontend/compile.hh"
#include "ir/printer.hh"
#include "profile/value_profiler.hh"

using namespace softcheck;

// A checksum loop in MiniLang: `crc` and `i` are the state variables
// the paper's analysis will find and protect.
static const char *kKernel = R"(
const TAB: i32[8] = [3, 14, 15, 92, 65, 35, 89, 79];

fn main(data: ptr<i32>, n: i32) -> i32 {
    var crc: i32 = 1;
    for (var i: i32 = 0; i < n; i = i + 1) {
        var v: i32 = data[i];
        var t: i32 = TAB[v & 7];
        crc = ((crc << 5) ^ (v + t)) & 1048575;
    }
    return crc;
}
)";

static void
fillInput(Memory &mem, uint64_t base, int n, int seed)
{
    for (int i = 0; i < n; ++i)
        mem.write(base + 4u * static_cast<unsigned>(i), 4,
                  static_cast<uint64_t>((i * seed + 11) % 251));
}

int
main()
{
    // 1. Compile.
    auto mod = compileMiniLang(kKernel, "quickstart");
    std::printf("--- original IR ---\n%s\n",
                moduleToString(*mod).c_str());

    // 2. Profile on a training input.
    const unsigned sites = assignProfileSites(*mod);
    ProfileData profile;
    {
        ExecModule em(*mod);
        Memory mem;
        const uint64_t buf = mem.alloc(4 * 256);
        fillInput(mem, buf, 256, 7);
        ValueProfiler prof(em.numProfileSites());
        ExecOptions opts;
        opts.profiler = &prof;
        Interpreter interp(em, mem);
        auto r = interp.run(em.functionIndex("main"), {buf, 256}, opts);
        std::printf("profiling run: ret=%lld, %llu instructions, "
                    "%u/%u sites check-amenable\n\n",
                    static_cast<long long>(r.retValue),
                    static_cast<unsigned long long>(r.dynInstrs),
                    ProfileData(prof, floatSiteFlags(*mod, sites))
                        .numAmenable(),
                    sites);
        profile = ProfileData(prof, floatSiteFlags(*mod, sites));
    }

    // 3. Harden: duplication + expected-value checks, both
    //    optimizations on.
    HardeningOptions hopts;
    hopts.mode = HardeningMode::DupValChks;
    HardeningReport report = hardenModule(*mod, hopts, &profile);
    std::printf("--- hardening report ---\n%s\n\n",
                report.str().c_str());
    std::printf("--- hardened IR ---\n%s\n",
                moduleToString(*mod).c_str());

    // 4. Inject faults on a *different* input.
    ExecModule em(*mod);
    uint64_t golden_ret = 0;
    uint64_t golden_dyn = 0;
    {
        Memory mem;
        const uint64_t buf = mem.alloc(4 * 256);
        fillInput(mem, buf, 256, 13);
        Interpreter interp(em, mem);
        auto r = interp.run(em.functionIndex("main"), {buf, 256}, {});
        golden_ret = r.retValue;
        golden_dyn = r.dynInstrs;
    }

    int masked = 0, sdc = 0, detected = 0, trapped = 0;
    Rng rng(2026);
    const int kTrials = 500;
    for (int t = 0; t < kTrials; ++t) {
        Memory mem;
        const uint64_t buf = mem.alloc(4 * 256);
        fillInput(mem, buf, 256, 13);
        Rng trial_rng = rng.split();
        ExecOptions opts;
        opts.faultAtDynInstr = rng.nextBelow(golden_dyn);
        opts.faultRng = &trial_rng;
        opts.maxDynInstrs = golden_dyn * 20;
        Interpreter interp(em, mem);
        auto r = interp.run(em.functionIndex("main"), {buf, 256}, opts);
        switch (r.term) {
          case Termination::Ok:
            (r.retValue == golden_ret ? masked : sdc)++;
            break;
          case Termination::CheckFailed:
            ++detected;
            break;
          default:
            ++trapped;
            break;
        }
    }
    std::printf("--- %d bit-flip injections ---\n", kTrials);
    std::printf("masked:   %4d (%.1f%%)\n", masked,
                100.0 * masked / kTrials);
    std::printf("detected: %4d (%.1f%%)  <- SoftCheck checks fired\n",
                detected, 100.0 * detected / kTrials);
    std::printf("trapped:  %4d (%.1f%%)  <- hardware symptoms\n",
                trapped, 100.0 * trapped / kTrials);
    std::printf("SDC:      %4d (%.1f%%)  <- silent corruptions left\n",
                sdc, 100.0 * sdc / kTrials);
    return 0;
}
