/**
 * @file
 * Compiler-explorer-style tool: compile a MiniLang source file and dump
 * the SSA IR before and after hardening, with the state variables and
 * check sites annotated. With no arguments it uses the paper's Fig. 3
 * CRC example.
 *
 * Usage:  ./build/examples/minilang_explorer [file.ml] [mode]
 *         mode: original | dup | dupchk | full   (default dupchk)
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/pipeline.hh"
#include "frontend/compile.hh"
#include "ir/printer.hh"
#include "profile/value_profiler.hh"
#include "workloads/workload.hh"

using namespace softcheck;

static const char *kFig3Example = R"(
// The paper's Fig. 3 motivating example (mp3dec CRC loop, adapted):
// crc, pos and len are loop state variables.
const CRC_TAB: i32[16] = [0, 3, 6, 5, 12, 15, 10, 9,
                          24, 27, 30, 29, 20, 23, 18, 17];

fn main(data: ptr<i32>, len: i32) -> i32 {
    var crc: i32 = 65535;
    var pos: i32 = 0;
    while (len >= 32) {
        var d: i32 = data[pos];
        var tv: i32 = CRC_TAB[(d >> 24) & 15];
        crc = ((crc << 8) ^ tv) & 16777215;
        pos = pos + 1;
        len = len - 32;
    }
    return crc;
}
)";

int
main(int argc, char **argv)
{
    std::string source = kFig3Example;
    if (argc > 1) {
        std::ifstream is(argv[1]);
        if (!is) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::stringstream ss;
        ss << is.rdbuf();
        source = ss.str();
    }
    HardeningMode mode = HardeningMode::DupValChks;
    if (argc > 2) {
        const std::string m = argv[2];
        if (m == "original")
            mode = HardeningMode::Original;
        else if (m == "dup")
            mode = HardeningMode::DupOnly;
        else if (m == "full")
            mode = HardeningMode::FullDup;
    }

    try {
        auto mod = compileMiniLang(source, "explorer");
        std::printf("=== SSA IR (after mem2reg) ===\n%s\n",
                    moduleToString(*mod).c_str());

        ProfileData profile;
        if (mode == HardeningMode::DupValChks) {
            // Profile with a synthetic pointer-aware input: allocate a
            // generic buffer for every pointer argument.
            const unsigned sites = assignProfileSites(*mod);
            ExecModule em(*mod);
            Memory mem;
            Function *entry_fn = mod->functions().front();
            std::vector<uint64_t> args;
            for (std::size_t i = 0; i < entry_fn->numArgs(); ++i) {
                if (entry_fn->arg(i)->type().isPtr()) {
                    const uint64_t buf = mem.alloc(4 * 4096);
                    for (int j = 0; j < 4096; ++j)
                        mem.write(buf + 4u * static_cast<unsigned>(j),
                                  4,
                                  static_cast<uint64_t>(j * 2654435761u));
                    args.push_back(buf);
                } else {
                    args.push_back(4096);
                }
            }
            ValueProfiler prof(em.numProfileSites());
            ExecOptions opts;
            opts.profiler = &prof;
            opts.maxDynInstrs = 10'000'000;
            Interpreter interp(em, mem);
            auto r = interp.run(0, args, opts);
            if (r.term != Termination::Ok) {
                std::printf("(profiling run did not complete; "
                            "falling back to Dup only)\n");
                mode = HardeningMode::DupOnly;
            } else {
                profile =
                    ProfileData(prof, floatSiteFlags(*mod, sites));
            }
        }

        HardeningOptions hopts;
        hopts.mode = mode;
        auto report = hardenModule(
            *mod, hopts,
            mode == HardeningMode::DupValChks ? &profile : nullptr);
        std::printf("=== %s ===\n%s\n\n", hardeningModeName(mode),
                    report.str().c_str());
        std::printf("=== hardened IR (!dup marks duplicates; check.* "
                    "are inserted checks) ===\n%s",
                    moduleToString(*mod).c_str());
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
