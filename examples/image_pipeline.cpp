/**
 * @file
 * Figure 1 reproduction: decode an image under fault injection and
 * write three PGM files —
 *   fig1_a_golden.pgm        fault-free decode,
 *   fig1_b_acceptable.pgm    a fault whose corruption is numerically
 *                            wrong but above the 30 dB PSNR threshold,
 *   fig1_c_unacceptable.pgm  a fault producing a USDC.
 *
 * Build & run:  ./build/examples/image_pipeline [out_dir]
 */

#include <cstdio>
#include <fstream>

#include "fidelity/fidelity.hh"
#include "frontend/compile.hh"
#include "workloads/workload.hh"

using namespace softcheck;

namespace
{

void
writePgm(const std::string &path, const std::vector<double> &pixels,
         unsigned w, unsigned h)
{
    std::ofstream os(path, std::ios::binary);
    os << "P5\n" << w << " " << h << "\n255\n";
    for (double p : pixels) {
        const int v = std::max(0, std::min(255, static_cast<int>(p)));
        os.put(static_cast<char>(v));
    }
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : ".";
    const Workload &w = getWorkload("jpegdec");
    auto mod = compileMiniLang(w.source, w.name);
    ExecModule em(*mod);
    auto spec = w.makeInput(false);
    const unsigned iw = static_cast<unsigned>(spec.args[2].scalar);
    const unsigned ih = static_cast<unsigned>(spec.args[3].scalar);

    // Golden decode.
    std::vector<double> golden;
    uint64_t golden_dyn = 0;
    {
        auto run = prepareRun(spec);
        Interpreter interp(em, *run.mem);
        auto r = interp.run(em.functionIndex(w.entry), run.args, {});
        golden = extractSignal(w, spec, run);
        golden_dyn = r.dynInstrs;
    }
    writePgm(dir + "/fig1_a_golden.pgm", golden, iw, ih);

    // Hunt for one acceptable and one unacceptable corruption.
    bool have_asdc = false, have_usdc = false;
    Rng rng(4242);
    for (int t = 0; t < 40000 && (!have_asdc || !have_usdc); ++t) {
        auto run = prepareRun(spec);
        Rng trial = rng.split();
        ExecOptions opts;
        opts.faultAtDynInstr = rng.nextBelow(golden_dyn);
        opts.faultRng = &trial;
        opts.maxDynInstrs = golden_dyn * 20;
        Interpreter interp(em, *run.mem);
        auto r = interp.run(em.functionIndex(w.entry), run.args, opts);
        if (r.term != Termination::Ok)
            continue;
        auto signal = extractSignal(w, spec, run);
        if (signal == golden)
            continue;
        const double score = psnr(golden, signal);
        if (!have_asdc && score >= w.threshold && score < 55.0) {
            writePgm(dir + "/fig1_b_acceptable.pgm", signal, iw, ih);
            std::printf("  acceptable corruption: PSNR %.1f dB "
                        "(>= %.0f dB threshold) after flipping bit %u "
                        "of a register at instr %llu\n",
                        score, w.threshold, r.fault.bit,
                        static_cast<unsigned long long>(
                            r.fault.atDynInstr));
            have_asdc = true;
        } else if (!have_usdc && score < w.threshold) {
            writePgm(dir + "/fig1_c_unacceptable.pgm", signal, iw, ih);
            std::printf("  UNACCEPTABLE corruption: PSNR %.1f dB "
                        "(< %.0f dB) after flipping bit %u of a "
                        "register at instr %llu\n",
                        score, w.threshold, r.fault.bit,
                        static_cast<unsigned long long>(
                            r.fault.atDynInstr));
            have_usdc = true;
        }
    }
    if (!have_asdc)
        std::printf("note: no acceptable-corruption sample found\n");
    if (!have_usdc)
        std::printf("note: no USDC sample found\n");
    return 0;
}
