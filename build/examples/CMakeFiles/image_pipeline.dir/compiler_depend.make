# Empty compiler generated dependencies file for image_pipeline.
# This may be replaced when dependencies are built.
