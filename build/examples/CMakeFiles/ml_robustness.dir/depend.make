# Empty dependencies file for ml_robustness.
# This may be replaced when dependencies are built.
