file(REMOVE_RECURSE
  "CMakeFiles/ml_robustness.dir/ml_robustness.cpp.o"
  "CMakeFiles/ml_robustness.dir/ml_robustness.cpp.o.d"
  "ml_robustness"
  "ml_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
