file(REMOVE_RECURSE
  "CMakeFiles/minilang_explorer.dir/minilang_explorer.cpp.o"
  "CMakeFiles/minilang_explorer.dir/minilang_explorer.cpp.o.d"
  "minilang_explorer"
  "minilang_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minilang_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
