# Empty dependencies file for minilang_explorer.
# This may be replaced when dependencies are built.
