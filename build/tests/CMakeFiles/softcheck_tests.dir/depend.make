# Empty dependencies file for softcheck_tests.
# This may be replaced when dependencies are built.
