
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_const_fold.cc" "tests/CMakeFiles/softcheck_tests.dir/analysis/test_const_fold.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/analysis/test_const_fold.cc.o.d"
  "/root/repo/tests/analysis/test_dominators.cc" "tests/CMakeFiles/softcheck_tests.dir/analysis/test_dominators.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/analysis/test_dominators.cc.o.d"
  "/root/repo/tests/analysis/test_loops_ssa.cc" "tests/CMakeFiles/softcheck_tests.dir/analysis/test_loops_ssa.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/analysis/test_loops_ssa.cc.o.d"
  "/root/repo/tests/core/test_hardening.cc" "tests/CMakeFiles/softcheck_tests.dir/core/test_hardening.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/core/test_hardening.cc.o.d"
  "/root/repo/tests/core/test_state_vars.cc" "tests/CMakeFiles/softcheck_tests.dir/core/test_state_vars.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/core/test_state_vars.cc.o.d"
  "/root/repo/tests/fault/test_campaign.cc" "tests/CMakeFiles/softcheck_tests.dir/fault/test_campaign.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/fault/test_campaign.cc.o.d"
  "/root/repo/tests/fault/test_campaign_properties.cc" "tests/CMakeFiles/softcheck_tests.dir/fault/test_campaign_properties.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/fault/test_campaign_properties.cc.o.d"
  "/root/repo/tests/fault/test_value_change.cc" "tests/CMakeFiles/softcheck_tests.dir/fault/test_value_change.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/fault/test_value_change.cc.o.d"
  "/root/repo/tests/fidelity/test_fidelity.cc" "tests/CMakeFiles/softcheck_tests.dir/fidelity/test_fidelity.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/fidelity/test_fidelity.cc.o.d"
  "/root/repo/tests/frontend/test_frontend.cc" "tests/CMakeFiles/softcheck_tests.dir/frontend/test_frontend.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/frontend/test_frontend.cc.o.d"
  "/root/repo/tests/frontend/test_lexer.cc" "tests/CMakeFiles/softcheck_tests.dir/frontend/test_lexer.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/frontend/test_lexer.cc.o.d"
  "/root/repo/tests/integration/test_end_to_end.cc" "tests/CMakeFiles/softcheck_tests.dir/integration/test_end_to_end.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/integration/test_end_to_end.cc.o.d"
  "/root/repo/tests/interp/test_cost_model.cc" "tests/CMakeFiles/softcheck_tests.dir/interp/test_cost_model.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/interp/test_cost_model.cc.o.d"
  "/root/repo/tests/interp/test_exec_module.cc" "tests/CMakeFiles/softcheck_tests.dir/interp/test_exec_module.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/interp/test_exec_module.cc.o.d"
  "/root/repo/tests/interp/test_float_semantics.cc" "tests/CMakeFiles/softcheck_tests.dir/interp/test_float_semantics.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/interp/test_float_semantics.cc.o.d"
  "/root/repo/tests/interp/test_interpreter.cc" "tests/CMakeFiles/softcheck_tests.dir/interp/test_interpreter.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/interp/test_interpreter.cc.o.d"
  "/root/repo/tests/interp/test_memory.cc" "tests/CMakeFiles/softcheck_tests.dir/interp/test_memory.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/interp/test_memory.cc.o.d"
  "/root/repo/tests/ir/test_clone.cc" "tests/CMakeFiles/softcheck_tests.dir/ir/test_clone.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/ir/test_clone.cc.o.d"
  "/root/repo/tests/ir/test_ir_core.cc" "tests/CMakeFiles/softcheck_tests.dir/ir/test_ir_core.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/ir/test_ir_core.cc.o.d"
  "/root/repo/tests/ir/test_parser.cc" "tests/CMakeFiles/softcheck_tests.dir/ir/test_parser.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/ir/test_parser.cc.o.d"
  "/root/repo/tests/ir/test_printer_uniquing.cc" "tests/CMakeFiles/softcheck_tests.dir/ir/test_printer_uniquing.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/ir/test_printer_uniquing.cc.o.d"
  "/root/repo/tests/ir/test_type.cc" "tests/CMakeFiles/softcheck_tests.dir/ir/test_type.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/ir/test_type.cc.o.d"
  "/root/repo/tests/profile/test_histogram.cc" "tests/CMakeFiles/softcheck_tests.dir/profile/test_histogram.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/profile/test_histogram.cc.o.d"
  "/root/repo/tests/profile/test_profile_data.cc" "tests/CMakeFiles/softcheck_tests.dir/profile/test_profile_data.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/profile/test_profile_data.cc.o.d"
  "/root/repo/tests/support/test_bits.cc" "tests/CMakeFiles/softcheck_tests.dir/support/test_bits.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/support/test_bits.cc.o.d"
  "/root/repo/tests/support/test_rng.cc" "tests/CMakeFiles/softcheck_tests.dir/support/test_rng.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/support/test_rng.cc.o.d"
  "/root/repo/tests/support/test_stats.cc" "tests/CMakeFiles/softcheck_tests.dir/support/test_stats.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/support/test_stats.cc.o.d"
  "/root/repo/tests/support/test_text.cc" "tests/CMakeFiles/softcheck_tests.dir/support/test_text.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/support/test_text.cc.o.d"
  "/root/repo/tests/workloads/test_codecs.cc" "tests/CMakeFiles/softcheck_tests.dir/workloads/test_codecs.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/workloads/test_codecs.cc.o.d"
  "/root/repo/tests/workloads/test_fidelity_integration.cc" "tests/CMakeFiles/softcheck_tests.dir/workloads/test_fidelity_integration.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/workloads/test_fidelity_integration.cc.o.d"
  "/root/repo/tests/workloads/test_workloads.cc" "tests/CMakeFiles/softcheck_tests.dir/workloads/test_workloads.cc.o" "gcc" "tests/CMakeFiles/softcheck_tests.dir/workloads/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/softcheck_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/softcheck_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/softcheck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/softcheck_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/softcheck_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/softcheck_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/softcheck_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/softcheck_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/fidelity/CMakeFiles/softcheck_fidelity.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/softcheck_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
