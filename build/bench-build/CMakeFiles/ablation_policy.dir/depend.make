# Empty dependencies file for ablation_policy.
# This may be replaced when dependencies are built.
