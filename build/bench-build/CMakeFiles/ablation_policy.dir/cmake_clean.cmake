file(REMOVE_RECURSE
  "../bench/ablation_policy"
  "../bench/ablation_policy.pdb"
  "CMakeFiles/ablation_policy.dir/ablation_policy.cc.o"
  "CMakeFiles/ablation_policy.dir/ablation_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
