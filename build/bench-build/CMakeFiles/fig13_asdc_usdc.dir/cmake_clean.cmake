file(REMOVE_RECURSE
  "../bench/fig13_asdc_usdc"
  "../bench/fig13_asdc_usdc.pdb"
  "CMakeFiles/fig13_asdc_usdc.dir/fig13_asdc_usdc.cc.o"
  "CMakeFiles/fig13_asdc_usdc.dir/fig13_asdc_usdc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_asdc_usdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
