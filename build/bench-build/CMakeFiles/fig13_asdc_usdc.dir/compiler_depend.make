# Empty compiler generated dependencies file for fig13_asdc_usdc.
# This may be replaced when dependencies are built.
