file(REMOVE_RECURSE
  "../bench/fig02_sdc_breakdown"
  "../bench/fig02_sdc_breakdown.pdb"
  "CMakeFiles/fig02_sdc_breakdown.dir/fig02_sdc_breakdown.cc.o"
  "CMakeFiles/fig02_sdc_breakdown.dir/fig02_sdc_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_sdc_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
