file(REMOVE_RECURSE
  "../bench/fig10_static_stats"
  "../bench/fig10_static_stats.pdb"
  "CMakeFiles/fig10_static_stats.dir/fig10_static_stats.cc.o"
  "CMakeFiles/fig10_static_stats.dir/fig10_static_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_static_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
