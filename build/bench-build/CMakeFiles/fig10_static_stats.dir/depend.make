# Empty dependencies file for fig10_static_stats.
# This may be replaced when dependencies are built.
