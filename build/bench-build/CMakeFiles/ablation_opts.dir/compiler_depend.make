# Empty compiler generated dependencies file for ablation_opts.
# This may be replaced when dependencies are built.
