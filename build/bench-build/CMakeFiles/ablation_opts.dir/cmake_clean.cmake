file(REMOVE_RECURSE
  "../bench/ablation_opts"
  "../bench/ablation_opts.pdb"
  "CMakeFiles/ablation_opts.dir/ablation_opts.cc.o"
  "CMakeFiles/ablation_opts.dir/ablation_opts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
