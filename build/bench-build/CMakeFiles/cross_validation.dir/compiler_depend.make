# Empty compiler generated dependencies file for cross_validation.
# This may be replaced when dependencies are built.
