file(REMOVE_RECURSE
  "../bench/cross_validation"
  "../bench/cross_validation.pdb"
  "CMakeFiles/cross_validation.dir/cross_validation.cc.o"
  "CMakeFiles/cross_validation.dir/cross_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
