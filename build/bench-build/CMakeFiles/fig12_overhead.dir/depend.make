# Empty dependencies file for fig12_overhead.
# This may be replaced when dependencies are built.
