
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_overhead.cc" "bench-build/CMakeFiles/fig12_overhead.dir/fig12_overhead.cc.o" "gcc" "bench-build/CMakeFiles/fig12_overhead.dir/fig12_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fault/CMakeFiles/softcheck_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/softcheck_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/softcheck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/softcheck_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/softcheck_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/softcheck_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/softcheck_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/softcheck_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/fidelity/CMakeFiles/softcheck_fidelity.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/softcheck_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
