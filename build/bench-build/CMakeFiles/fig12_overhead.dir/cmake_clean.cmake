file(REMOVE_RECURSE
  "../bench/fig12_overhead"
  "../bench/fig12_overhead.pdb"
  "CMakeFiles/fig12_overhead.dir/fig12_overhead.cc.o"
  "CMakeFiles/fig12_overhead.dir/fig12_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
