# Empty dependencies file for fig11_fault_coverage.
# This may be replaced when dependencies are built.
