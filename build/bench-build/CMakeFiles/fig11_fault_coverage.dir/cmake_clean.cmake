file(REMOVE_RECURSE
  "../bench/fig11_fault_coverage"
  "../bench/fig11_fault_coverage.pdb"
  "CMakeFiles/fig11_fault_coverage.dir/fig11_fault_coverage.cc.o"
  "CMakeFiles/fig11_fault_coverage.dir/fig11_fault_coverage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_fault_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
