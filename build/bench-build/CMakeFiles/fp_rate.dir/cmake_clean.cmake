file(REMOVE_RECURSE
  "../bench/fp_rate"
  "../bench/fp_rate.pdb"
  "CMakeFiles/fp_rate.dir/fp_rate.cc.o"
  "CMakeFiles/fp_rate.dir/fp_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
