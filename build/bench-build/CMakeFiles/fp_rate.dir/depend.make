# Empty dependencies file for fp_rate.
# This may be replaced when dependencies are built.
