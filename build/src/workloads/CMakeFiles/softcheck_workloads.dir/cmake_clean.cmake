file(REMOVE_RECURSE
  "CMakeFiles/softcheck_workloads.dir/codecs.cc.o"
  "CMakeFiles/softcheck_workloads.dir/codecs.cc.o.d"
  "CMakeFiles/softcheck_workloads.dir/inputs.cc.o"
  "CMakeFiles/softcheck_workloads.dir/inputs.cc.o.d"
  "CMakeFiles/softcheck_workloads.dir/registry.cc.o"
  "CMakeFiles/softcheck_workloads.dir/registry.cc.o.d"
  "CMakeFiles/softcheck_workloads.dir/w_audio.cc.o"
  "CMakeFiles/softcheck_workloads.dir/w_audio.cc.o.d"
  "CMakeFiles/softcheck_workloads.dir/w_image.cc.o"
  "CMakeFiles/softcheck_workloads.dir/w_image.cc.o.d"
  "CMakeFiles/softcheck_workloads.dir/w_ml.cc.o"
  "CMakeFiles/softcheck_workloads.dir/w_ml.cc.o.d"
  "CMakeFiles/softcheck_workloads.dir/w_video.cc.o"
  "CMakeFiles/softcheck_workloads.dir/w_video.cc.o.d"
  "CMakeFiles/softcheck_workloads.dir/w_vision.cc.o"
  "CMakeFiles/softcheck_workloads.dir/w_vision.cc.o.d"
  "CMakeFiles/softcheck_workloads.dir/workload.cc.o"
  "CMakeFiles/softcheck_workloads.dir/workload.cc.o.d"
  "libsoftcheck_workloads.a"
  "libsoftcheck_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcheck_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
