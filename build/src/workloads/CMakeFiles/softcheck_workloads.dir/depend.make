# Empty dependencies file for softcheck_workloads.
# This may be replaced when dependencies are built.
