file(REMOVE_RECURSE
  "libsoftcheck_workloads.a"
)
