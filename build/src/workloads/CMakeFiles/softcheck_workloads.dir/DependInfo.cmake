
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/codecs.cc" "src/workloads/CMakeFiles/softcheck_workloads.dir/codecs.cc.o" "gcc" "src/workloads/CMakeFiles/softcheck_workloads.dir/codecs.cc.o.d"
  "/root/repo/src/workloads/inputs.cc" "src/workloads/CMakeFiles/softcheck_workloads.dir/inputs.cc.o" "gcc" "src/workloads/CMakeFiles/softcheck_workloads.dir/inputs.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/softcheck_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/softcheck_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/w_audio.cc" "src/workloads/CMakeFiles/softcheck_workloads.dir/w_audio.cc.o" "gcc" "src/workloads/CMakeFiles/softcheck_workloads.dir/w_audio.cc.o.d"
  "/root/repo/src/workloads/w_image.cc" "src/workloads/CMakeFiles/softcheck_workloads.dir/w_image.cc.o" "gcc" "src/workloads/CMakeFiles/softcheck_workloads.dir/w_image.cc.o.d"
  "/root/repo/src/workloads/w_ml.cc" "src/workloads/CMakeFiles/softcheck_workloads.dir/w_ml.cc.o" "gcc" "src/workloads/CMakeFiles/softcheck_workloads.dir/w_ml.cc.o.d"
  "/root/repo/src/workloads/w_video.cc" "src/workloads/CMakeFiles/softcheck_workloads.dir/w_video.cc.o" "gcc" "src/workloads/CMakeFiles/softcheck_workloads.dir/w_video.cc.o.d"
  "/root/repo/src/workloads/w_vision.cc" "src/workloads/CMakeFiles/softcheck_workloads.dir/w_vision.cc.o" "gcc" "src/workloads/CMakeFiles/softcheck_workloads.dir/w_vision.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/softcheck_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/softcheck_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fidelity/CMakeFiles/softcheck_fidelity.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/softcheck_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/softcheck_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/softcheck_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
