file(REMOVE_RECURSE
  "libsoftcheck_interp.a"
)
