# Empty compiler generated dependencies file for softcheck_interp.
# This may be replaced when dependencies are built.
