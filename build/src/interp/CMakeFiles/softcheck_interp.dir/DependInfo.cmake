
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/cost_model.cc" "src/interp/CMakeFiles/softcheck_interp.dir/cost_model.cc.o" "gcc" "src/interp/CMakeFiles/softcheck_interp.dir/cost_model.cc.o.d"
  "/root/repo/src/interp/exec_module.cc" "src/interp/CMakeFiles/softcheck_interp.dir/exec_module.cc.o" "gcc" "src/interp/CMakeFiles/softcheck_interp.dir/exec_module.cc.o.d"
  "/root/repo/src/interp/interpreter.cc" "src/interp/CMakeFiles/softcheck_interp.dir/interpreter.cc.o" "gcc" "src/interp/CMakeFiles/softcheck_interp.dir/interpreter.cc.o.d"
  "/root/repo/src/interp/memory.cc" "src/interp/CMakeFiles/softcheck_interp.dir/memory.cc.o" "gcc" "src/interp/CMakeFiles/softcheck_interp.dir/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/softcheck_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/softcheck_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
