file(REMOVE_RECURSE
  "CMakeFiles/softcheck_interp.dir/cost_model.cc.o"
  "CMakeFiles/softcheck_interp.dir/cost_model.cc.o.d"
  "CMakeFiles/softcheck_interp.dir/exec_module.cc.o"
  "CMakeFiles/softcheck_interp.dir/exec_module.cc.o.d"
  "CMakeFiles/softcheck_interp.dir/interpreter.cc.o"
  "CMakeFiles/softcheck_interp.dir/interpreter.cc.o.d"
  "CMakeFiles/softcheck_interp.dir/memory.cc.o"
  "CMakeFiles/softcheck_interp.dir/memory.cc.o.d"
  "libsoftcheck_interp.a"
  "libsoftcheck_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcheck_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
