file(REMOVE_RECURSE
  "CMakeFiles/softcheck_core.dir/duplication.cc.o"
  "CMakeFiles/softcheck_core.dir/duplication.cc.o.d"
  "CMakeFiles/softcheck_core.dir/full_duplication.cc.o"
  "CMakeFiles/softcheck_core.dir/full_duplication.cc.o.d"
  "CMakeFiles/softcheck_core.dir/pipeline.cc.o"
  "CMakeFiles/softcheck_core.dir/pipeline.cc.o.d"
  "CMakeFiles/softcheck_core.dir/state_vars.cc.o"
  "CMakeFiles/softcheck_core.dir/state_vars.cc.o.d"
  "CMakeFiles/softcheck_core.dir/value_checks.cc.o"
  "CMakeFiles/softcheck_core.dir/value_checks.cc.o.d"
  "libsoftcheck_core.a"
  "libsoftcheck_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcheck_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
