
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/duplication.cc" "src/core/CMakeFiles/softcheck_core.dir/duplication.cc.o" "gcc" "src/core/CMakeFiles/softcheck_core.dir/duplication.cc.o.d"
  "/root/repo/src/core/full_duplication.cc" "src/core/CMakeFiles/softcheck_core.dir/full_duplication.cc.o" "gcc" "src/core/CMakeFiles/softcheck_core.dir/full_duplication.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/softcheck_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/softcheck_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/state_vars.cc" "src/core/CMakeFiles/softcheck_core.dir/state_vars.cc.o" "gcc" "src/core/CMakeFiles/softcheck_core.dir/state_vars.cc.o.d"
  "/root/repo/src/core/value_checks.cc" "src/core/CMakeFiles/softcheck_core.dir/value_checks.cc.o" "gcc" "src/core/CMakeFiles/softcheck_core.dir/value_checks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/softcheck_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/softcheck_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/softcheck_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/softcheck_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/softcheck_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
