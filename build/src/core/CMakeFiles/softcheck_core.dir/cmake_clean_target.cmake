file(REMOVE_RECURSE
  "libsoftcheck_core.a"
)
