# Empty compiler generated dependencies file for softcheck_core.
# This may be replaced when dependencies are built.
