file(REMOVE_RECURSE
  "libsoftcheck_fault.a"
)
