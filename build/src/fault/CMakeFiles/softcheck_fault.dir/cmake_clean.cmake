file(REMOVE_RECURSE
  "CMakeFiles/softcheck_fault.dir/campaign.cc.o"
  "CMakeFiles/softcheck_fault.dir/campaign.cc.o.d"
  "libsoftcheck_fault.a"
  "libsoftcheck_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcheck_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
