# Empty dependencies file for softcheck_fault.
# This may be replaced when dependencies are built.
