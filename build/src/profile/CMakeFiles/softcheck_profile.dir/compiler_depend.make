# Empty compiler generated dependencies file for softcheck_profile.
# This may be replaced when dependencies are built.
