file(REMOVE_RECURSE
  "libsoftcheck_profile.a"
)
