
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/online_histogram.cc" "src/profile/CMakeFiles/softcheck_profile.dir/online_histogram.cc.o" "gcc" "src/profile/CMakeFiles/softcheck_profile.dir/online_histogram.cc.o.d"
  "/root/repo/src/profile/profile_data.cc" "src/profile/CMakeFiles/softcheck_profile.dir/profile_data.cc.o" "gcc" "src/profile/CMakeFiles/softcheck_profile.dir/profile_data.cc.o.d"
  "/root/repo/src/profile/value_profiler.cc" "src/profile/CMakeFiles/softcheck_profile.dir/value_profiler.cc.o" "gcc" "src/profile/CMakeFiles/softcheck_profile.dir/value_profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/softcheck_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/softcheck_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/softcheck_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
