file(REMOVE_RECURSE
  "CMakeFiles/softcheck_profile.dir/online_histogram.cc.o"
  "CMakeFiles/softcheck_profile.dir/online_histogram.cc.o.d"
  "CMakeFiles/softcheck_profile.dir/profile_data.cc.o"
  "CMakeFiles/softcheck_profile.dir/profile_data.cc.o.d"
  "CMakeFiles/softcheck_profile.dir/value_profiler.cc.o"
  "CMakeFiles/softcheck_profile.dir/value_profiler.cc.o.d"
  "libsoftcheck_profile.a"
  "libsoftcheck_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcheck_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
