file(REMOVE_RECURSE
  "CMakeFiles/softcheck_analysis.dir/cfg_utils.cc.o"
  "CMakeFiles/softcheck_analysis.dir/cfg_utils.cc.o.d"
  "CMakeFiles/softcheck_analysis.dir/const_fold.cc.o"
  "CMakeFiles/softcheck_analysis.dir/const_fold.cc.o.d"
  "CMakeFiles/softcheck_analysis.dir/dominance_verify.cc.o"
  "CMakeFiles/softcheck_analysis.dir/dominance_verify.cc.o.d"
  "CMakeFiles/softcheck_analysis.dir/dominators.cc.o"
  "CMakeFiles/softcheck_analysis.dir/dominators.cc.o.d"
  "CMakeFiles/softcheck_analysis.dir/loop_info.cc.o"
  "CMakeFiles/softcheck_analysis.dir/loop_info.cc.o.d"
  "CMakeFiles/softcheck_analysis.dir/mem2reg.cc.o"
  "CMakeFiles/softcheck_analysis.dir/mem2reg.cc.o.d"
  "CMakeFiles/softcheck_analysis.dir/producer_chain.cc.o"
  "CMakeFiles/softcheck_analysis.dir/producer_chain.cc.o.d"
  "CMakeFiles/softcheck_analysis.dir/static_stats.cc.o"
  "CMakeFiles/softcheck_analysis.dir/static_stats.cc.o.d"
  "libsoftcheck_analysis.a"
  "libsoftcheck_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcheck_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
