# Empty compiler generated dependencies file for softcheck_analysis.
# This may be replaced when dependencies are built.
