file(REMOVE_RECURSE
  "libsoftcheck_analysis.a"
)
