
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cfg_utils.cc" "src/analysis/CMakeFiles/softcheck_analysis.dir/cfg_utils.cc.o" "gcc" "src/analysis/CMakeFiles/softcheck_analysis.dir/cfg_utils.cc.o.d"
  "/root/repo/src/analysis/const_fold.cc" "src/analysis/CMakeFiles/softcheck_analysis.dir/const_fold.cc.o" "gcc" "src/analysis/CMakeFiles/softcheck_analysis.dir/const_fold.cc.o.d"
  "/root/repo/src/analysis/dominance_verify.cc" "src/analysis/CMakeFiles/softcheck_analysis.dir/dominance_verify.cc.o" "gcc" "src/analysis/CMakeFiles/softcheck_analysis.dir/dominance_verify.cc.o.d"
  "/root/repo/src/analysis/dominators.cc" "src/analysis/CMakeFiles/softcheck_analysis.dir/dominators.cc.o" "gcc" "src/analysis/CMakeFiles/softcheck_analysis.dir/dominators.cc.o.d"
  "/root/repo/src/analysis/loop_info.cc" "src/analysis/CMakeFiles/softcheck_analysis.dir/loop_info.cc.o" "gcc" "src/analysis/CMakeFiles/softcheck_analysis.dir/loop_info.cc.o.d"
  "/root/repo/src/analysis/mem2reg.cc" "src/analysis/CMakeFiles/softcheck_analysis.dir/mem2reg.cc.o" "gcc" "src/analysis/CMakeFiles/softcheck_analysis.dir/mem2reg.cc.o.d"
  "/root/repo/src/analysis/producer_chain.cc" "src/analysis/CMakeFiles/softcheck_analysis.dir/producer_chain.cc.o" "gcc" "src/analysis/CMakeFiles/softcheck_analysis.dir/producer_chain.cc.o.d"
  "/root/repo/src/analysis/static_stats.cc" "src/analysis/CMakeFiles/softcheck_analysis.dir/static_stats.cc.o" "gcc" "src/analysis/CMakeFiles/softcheck_analysis.dir/static_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/softcheck_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/softcheck_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
