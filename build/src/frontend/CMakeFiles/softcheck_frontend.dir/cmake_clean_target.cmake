file(REMOVE_RECURSE
  "libsoftcheck_frontend.a"
)
