# Empty dependencies file for softcheck_frontend.
# This may be replaced when dependencies are built.
