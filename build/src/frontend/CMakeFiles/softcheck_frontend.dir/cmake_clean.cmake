file(REMOVE_RECURSE
  "CMakeFiles/softcheck_frontend.dir/compile.cc.o"
  "CMakeFiles/softcheck_frontend.dir/compile.cc.o.d"
  "CMakeFiles/softcheck_frontend.dir/irgen.cc.o"
  "CMakeFiles/softcheck_frontend.dir/irgen.cc.o.d"
  "CMakeFiles/softcheck_frontend.dir/lexer.cc.o"
  "CMakeFiles/softcheck_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/softcheck_frontend.dir/parser.cc.o"
  "CMakeFiles/softcheck_frontend.dir/parser.cc.o.d"
  "libsoftcheck_frontend.a"
  "libsoftcheck_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcheck_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
