
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/compile.cc" "src/frontend/CMakeFiles/softcheck_frontend.dir/compile.cc.o" "gcc" "src/frontend/CMakeFiles/softcheck_frontend.dir/compile.cc.o.d"
  "/root/repo/src/frontend/irgen.cc" "src/frontend/CMakeFiles/softcheck_frontend.dir/irgen.cc.o" "gcc" "src/frontend/CMakeFiles/softcheck_frontend.dir/irgen.cc.o.d"
  "/root/repo/src/frontend/lexer.cc" "src/frontend/CMakeFiles/softcheck_frontend.dir/lexer.cc.o" "gcc" "src/frontend/CMakeFiles/softcheck_frontend.dir/lexer.cc.o.d"
  "/root/repo/src/frontend/parser.cc" "src/frontend/CMakeFiles/softcheck_frontend.dir/parser.cc.o" "gcc" "src/frontend/CMakeFiles/softcheck_frontend.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/softcheck_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/softcheck_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/softcheck_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
