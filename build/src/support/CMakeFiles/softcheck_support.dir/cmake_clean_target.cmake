file(REMOVE_RECURSE
  "libsoftcheck_support.a"
)
