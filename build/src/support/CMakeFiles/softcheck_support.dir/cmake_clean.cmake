file(REMOVE_RECURSE
  "CMakeFiles/softcheck_support.dir/error.cc.o"
  "CMakeFiles/softcheck_support.dir/error.cc.o.d"
  "CMakeFiles/softcheck_support.dir/rng.cc.o"
  "CMakeFiles/softcheck_support.dir/rng.cc.o.d"
  "CMakeFiles/softcheck_support.dir/stats.cc.o"
  "CMakeFiles/softcheck_support.dir/stats.cc.o.d"
  "CMakeFiles/softcheck_support.dir/text.cc.o"
  "CMakeFiles/softcheck_support.dir/text.cc.o.d"
  "libsoftcheck_support.a"
  "libsoftcheck_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcheck_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
