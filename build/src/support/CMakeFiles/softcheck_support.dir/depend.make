# Empty dependencies file for softcheck_support.
# This may be replaced when dependencies are built.
