file(REMOVE_RECURSE
  "libsoftcheck_ir.a"
)
