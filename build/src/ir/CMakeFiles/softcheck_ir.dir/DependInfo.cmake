
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/basic_block.cc" "src/ir/CMakeFiles/softcheck_ir.dir/basic_block.cc.o" "gcc" "src/ir/CMakeFiles/softcheck_ir.dir/basic_block.cc.o.d"
  "/root/repo/src/ir/clone.cc" "src/ir/CMakeFiles/softcheck_ir.dir/clone.cc.o" "gcc" "src/ir/CMakeFiles/softcheck_ir.dir/clone.cc.o.d"
  "/root/repo/src/ir/function.cc" "src/ir/CMakeFiles/softcheck_ir.dir/function.cc.o" "gcc" "src/ir/CMakeFiles/softcheck_ir.dir/function.cc.o.d"
  "/root/repo/src/ir/instruction.cc" "src/ir/CMakeFiles/softcheck_ir.dir/instruction.cc.o" "gcc" "src/ir/CMakeFiles/softcheck_ir.dir/instruction.cc.o.d"
  "/root/repo/src/ir/irbuilder.cc" "src/ir/CMakeFiles/softcheck_ir.dir/irbuilder.cc.o" "gcc" "src/ir/CMakeFiles/softcheck_ir.dir/irbuilder.cc.o.d"
  "/root/repo/src/ir/module.cc" "src/ir/CMakeFiles/softcheck_ir.dir/module.cc.o" "gcc" "src/ir/CMakeFiles/softcheck_ir.dir/module.cc.o.d"
  "/root/repo/src/ir/parser.cc" "src/ir/CMakeFiles/softcheck_ir.dir/parser.cc.o" "gcc" "src/ir/CMakeFiles/softcheck_ir.dir/parser.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/softcheck_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/softcheck_ir.dir/printer.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/ir/CMakeFiles/softcheck_ir.dir/verifier.cc.o" "gcc" "src/ir/CMakeFiles/softcheck_ir.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/softcheck_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
