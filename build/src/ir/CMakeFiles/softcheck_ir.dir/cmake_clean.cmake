file(REMOVE_RECURSE
  "CMakeFiles/softcheck_ir.dir/basic_block.cc.o"
  "CMakeFiles/softcheck_ir.dir/basic_block.cc.o.d"
  "CMakeFiles/softcheck_ir.dir/clone.cc.o"
  "CMakeFiles/softcheck_ir.dir/clone.cc.o.d"
  "CMakeFiles/softcheck_ir.dir/function.cc.o"
  "CMakeFiles/softcheck_ir.dir/function.cc.o.d"
  "CMakeFiles/softcheck_ir.dir/instruction.cc.o"
  "CMakeFiles/softcheck_ir.dir/instruction.cc.o.d"
  "CMakeFiles/softcheck_ir.dir/irbuilder.cc.o"
  "CMakeFiles/softcheck_ir.dir/irbuilder.cc.o.d"
  "CMakeFiles/softcheck_ir.dir/module.cc.o"
  "CMakeFiles/softcheck_ir.dir/module.cc.o.d"
  "CMakeFiles/softcheck_ir.dir/parser.cc.o"
  "CMakeFiles/softcheck_ir.dir/parser.cc.o.d"
  "CMakeFiles/softcheck_ir.dir/printer.cc.o"
  "CMakeFiles/softcheck_ir.dir/printer.cc.o.d"
  "CMakeFiles/softcheck_ir.dir/verifier.cc.o"
  "CMakeFiles/softcheck_ir.dir/verifier.cc.o.d"
  "libsoftcheck_ir.a"
  "libsoftcheck_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcheck_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
