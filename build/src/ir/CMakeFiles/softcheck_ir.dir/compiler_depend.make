# Empty compiler generated dependencies file for softcheck_ir.
# This may be replaced when dependencies are built.
