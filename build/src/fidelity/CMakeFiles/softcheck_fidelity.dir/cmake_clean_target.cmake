file(REMOVE_RECURSE
  "libsoftcheck_fidelity.a"
)
