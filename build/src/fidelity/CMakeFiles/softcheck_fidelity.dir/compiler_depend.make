# Empty compiler generated dependencies file for softcheck_fidelity.
# This may be replaced when dependencies are built.
