file(REMOVE_RECURSE
  "CMakeFiles/softcheck_fidelity.dir/fidelity.cc.o"
  "CMakeFiles/softcheck_fidelity.dir/fidelity.cc.o.d"
  "libsoftcheck_fidelity.a"
  "libsoftcheck_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcheck_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
