#include <gtest/gtest.h>

#include "frontend/lexer.hh"
#include "support/error.hh"

namespace softcheck
{
namespace
{

std::vector<TokKind>
kinds(const std::string &src)
{
    std::vector<TokKind> out;
    for (const Token &t : tokenize(src))
        out.push_back(t.kind);
    return out;
}

TEST(Lexer, EmptyInputYieldsEnd)
{
    auto toks = tokenize("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, TokKind::End);
}

TEST(Lexer, KeywordsAndIdents)
{
    auto ks = kinds("fn var const if else while for return break "
                    "continue true false foo");
    std::vector<TokKind> want = {
        TokKind::KwFn,     TokKind::KwVar,      TokKind::KwConst,
        TokKind::KwIf,     TokKind::KwElse,     TokKind::KwWhile,
        TokKind::KwFor,    TokKind::KwReturn,   TokKind::KwBreak,
        TokKind::KwContinue, TokKind::KwTrue,   TokKind::KwFalse,
        TokKind::Ident,    TokKind::End};
    EXPECT_EQ(ks, want);
}

TEST(Lexer, IntegerLiterals)
{
    auto toks = tokenize("0 42 123456789 0x1F");
    EXPECT_EQ(toks[0].intValue, 0);
    EXPECT_EQ(toks[1].intValue, 42);
    EXPECT_EQ(toks[2].intValue, 123456789);
    EXPECT_EQ(toks[3].intValue, 31);
}

TEST(Lexer, FloatLiterals)
{
    auto toks = tokenize("1.5 0.25 2e3 1.5e-2");
    EXPECT_EQ(toks[0].kind, TokKind::FloatLit);
    EXPECT_DOUBLE_EQ(toks[0].floatValue, 1.5);
    EXPECT_DOUBLE_EQ(toks[1].floatValue, 0.25);
    EXPECT_DOUBLE_EQ(toks[2].floatValue, 2000.0);
    EXPECT_DOUBLE_EQ(toks[3].floatValue, 0.015);
}

TEST(Lexer, IntThenDotIsNotFloatWithoutDigit)
{
    // "1 . x" style member access does not exist; '1.' alone is int
    // followed by error, but '1.5' is a float. Verify '1' '.' split is
    // rejected as unexpected char.
    EXPECT_THROW(tokenize("1."), FatalError);
}

TEST(Lexer, MultiCharOperators)
{
    auto ks = kinds("-> == != <= >= << >> && || = < >");
    std::vector<TokKind> want = {
        TokKind::Arrow, TokKind::EqEq, TokKind::NotEq, TokKind::Le,
        TokKind::Ge,    TokKind::Shl,  TokKind::Shr,   TokKind::AmpAmp,
        TokKind::PipePipe, TokKind::Assign, TokKind::Lt, TokKind::Gt,
        TokKind::End};
    EXPECT_EQ(ks, want);
}

TEST(Lexer, CommentsSkipped)
{
    auto ks = kinds("a // line comment\n b /* block\n comment */ c");
    std::vector<TokKind> want = {TokKind::Ident, TokKind::Ident,
                                 TokKind::Ident, TokKind::End};
    EXPECT_EQ(ks, want);
}

TEST(Lexer, UnterminatedBlockCommentFails)
{
    EXPECT_THROW(tokenize("a /* nope"), FatalError);
}

TEST(Lexer, LineNumbersTracked)
{
    auto toks = tokenize("a\nb\n\nc");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, RejectsUnknownCharacter)
{
    EXPECT_THROW(tokenize("a $ b"), FatalError);
}

} // namespace
} // namespace softcheck
