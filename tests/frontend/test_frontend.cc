#include <gtest/gtest.h>

#include "common/test_util.hh"
#include "frontend/parser.hh"
#include "ir/printer.hh"

namespace softcheck
{
namespace
{

using testutil::evalExprI32;
using testutil::evalInt;
using testutil::runSource;

// ---- parser shape ----------------------------------------------------

TEST(Parser, FunctionSignature)
{
    auto prog = parseProgram(
        "fn f(a: i32, p: ptr<f64>) -> i64 { return i64(a); }");
    ASSERT_EQ(prog.functions.size(), 1u);
    const auto &fn = prog.functions[0];
    EXPECT_EQ(fn.name, "f");
    ASSERT_EQ(fn.params.size(), 2u);
    EXPECT_FALSE(fn.params[0].type.isPointer);
    EXPECT_TRUE(fn.params[1].type.isPointer);
    EXPECT_EQ(fn.params[1].type.scalar, Type::f64());
    EXPECT_FALSE(fn.returnsVoid);
}

TEST(Parser, VoidFunction)
{
    auto prog = parseProgram("fn f() -> void { return; }");
    EXPECT_TRUE(prog.functions[0].returnsVoid);
    auto prog2 = parseProgram("fn f() { return; }");
    EXPECT_TRUE(prog2.functions[0].returnsVoid);
}

TEST(Parser, ConstArray)
{
    auto prog = parseProgram("const T: i32[3] = [1, 2, 3];");
    ASSERT_EQ(prog.consts.size(), 1u);
    EXPECT_TRUE(prog.consts[0].isArray);
    EXPECT_EQ(prog.consts[0].arraySize, 3u);
    EXPECT_EQ(prog.consts[0].values.size(), 3u);
}

TEST(Parser, RejectsBadSyntax)
{
    EXPECT_THROW(parseProgram("fn f( { }"), FatalError);
    EXPECT_THROW(parseProgram("fn f() -> badtype { }"), FatalError);
    EXPECT_THROW(parseProgram("garbage"), FatalError);
    EXPECT_THROW(parseProgram("fn f() { var x i32; }"), FatalError);
}

// ---- expression semantics ---------------------------------------------

TEST(IrGen, Arithmetic)
{
    EXPECT_EQ(evalExprI32("2 + 3 * 4"), 14);
    EXPECT_EQ(evalExprI32("(2 + 3) * 4"), 20);
    EXPECT_EQ(evalExprI32("10 / 3"), 3);
    EXPECT_EQ(evalExprI32("-10 / 3"), -3); // trunc toward zero
    EXPECT_EQ(evalExprI32("10 % 3"), 1);
    EXPECT_EQ(evalExprI32("-10 % 3"), -1);
    EXPECT_EQ(evalExprI32("-(5)"), -5);
}

TEST(IrGen, BitwiseAndShifts)
{
    EXPECT_EQ(evalExprI32("12 & 10"), 8);
    EXPECT_EQ(evalExprI32("12 | 10"), 14);
    EXPECT_EQ(evalExprI32("12 ^ 10"), 6);
    EXPECT_EQ(evalExprI32("1 << 10"), 1024);
    EXPECT_EQ(evalExprI32("-8 >> 1"), -4); // arithmetic shift
    EXPECT_EQ(evalExprI32("~0"), -1);
}

TEST(IrGen, Comparisons)
{
    EXPECT_EQ(evalExprI32("i32(3 < 4)"), 1);
    EXPECT_EQ(evalExprI32("i32(4 <= 3)"), 0);
    EXPECT_EQ(evalExprI32("i32(-1 < 1)"), 1); // signed compare
    EXPECT_EQ(evalExprI32("i32(2.5 > 2.0)"), 1);
}

TEST(IrGen, ShortCircuitAnd)
{
    // Division by zero on the right must not execute.
    const int64_t v = evalInt(R"(
        fn main(a: i32) -> i32 {
            if (a != 0 && 10 / a > 2) {
                return 1;
            }
            return 0;
        })", "main", {0});
    EXPECT_EQ(v, 0);
}

TEST(IrGen, ShortCircuitOr)
{
    const int64_t v = evalInt(R"(
        fn main(a: i32) -> i32 {
            if (a == 0 || 10 / a > 2) {
                return 1;
            }
            return 0;
        })", "main", {0});
    EXPECT_EQ(v, 1);
}

TEST(IrGen, Casts)
{
    EXPECT_EQ(evalExprI32("i32(3.9)"), 3);
    EXPECT_EQ(evalExprI32("i32(-3.9)"), -3);
    EXPECT_EQ(evalExprI32("i32(i8(200))"), -56); // truncation wraps
    EXPECT_EQ(evalExprI32("i32(i64(5) + i64(6))"), 11);
    EXPECT_EQ(evalExprI32("i32(f64(7) * 2.0)"), 14);
}

TEST(IrGen, ImplicitIntWidening)
{
    const int64_t v = evalInt(R"(
        fn main(a: i32) -> i64 {
            var big: i64 = 1000000000000;
            return big + a;
        })", "main", {5});
    EXPECT_EQ(v, 1000000000005);
}

TEST(IrGen, MathBuiltins)
{
    Memory mem;
    auto r = runSource(R"(
        fn main() -> f64 {
            return sqrt(16.0) + fabs(-2.0) + fmin(1.0, 2.0)
                 + fmax(3.0, 4.0);
        })", "main", {}, mem);
    EXPECT_EQ(r.term, Termination::Ok);
    EXPECT_DOUBLE_EQ(testutil::bitsF64(r.retValue), 4.0 + 2.0 + 1.0 + 4.0);
}

// ---- statements ---------------------------------------------------------

TEST(IrGen, WhileLoopWithBreakContinue)
{
    const int64_t v = evalInt(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            var i: i32 = 0;
            while (true) {
                i = i + 1;
                if (i > n) {
                    break;
                }
                if (i % 2 == 0) {
                    continue;
                }
                s = s + i;
            }
            return s;
        })", "main", {10});
    EXPECT_EQ(v, 1 + 3 + 5 + 7 + 9);
}

TEST(IrGen, NestedLoopsAndArrays)
{
    const int64_t v = evalInt(R"(
        fn main(n: i32) -> i32 {
            var acc: i32[4];
            for (var i: i32 = 0; i < 4; i = i + 1) {
                acc[i] = 0;
            }
            for (var i: i32 = 0; i < n; i = i + 1) {
                acc[i % 4] = acc[i % 4] + i;
            }
            var total: i32 = 0;
            for (var i: i32 = 0; i < 4; i = i + 1) {
                total = total + acc[i];
            }
            return total;
        })", "main", {10});
    EXPECT_EQ(v, 45);
}

TEST(IrGen, FunctionCallsAndRecursionDepth)
{
    const int64_t v = evalInt(R"(
        fn fib(n: i32) -> i32 {
            if (n < 2) {
                return n;
            }
            return fib(n - 1) + fib(n - 2);
        }
        fn main(n: i32) -> i32 {
            return fib(n);
        })", "main", {12});
    EXPECT_EQ(v, 144);
}

TEST(IrGen, GlobalConstTables)
{
    const int64_t v = evalInt(R"(
        const T: i32[4] = [10, 20, 30, 40];
        const SCALE: i32 = 3;
        fn main(i: i32) -> i32 {
            return T[i] * SCALE;
        })", "main", {2});
    EXPECT_EQ(v, 90);
}

TEST(IrGen, PointerArgsReadWrite)
{
    Memory mem;
    const uint64_t buf = mem.alloc(4 * 8);
    for (int i = 0; i < 8; ++i)
        mem.write(buf + 4 * i, 4, static_cast<uint64_t>(i + 1));
    auto r = runSource(R"(
        fn main(p: ptr<i32>, n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + p[i];
                p[i] = p[i] * 2;
            }
            return s;
        })", "main", {buf, 8}, mem);
    EXPECT_EQ(static_cast<int64_t>(r.retValue), 36);
    uint64_t v = 0;
    mem.read(buf, 4, v);
    EXPECT_EQ(v, 2u);
}

TEST(IrGen, ScalarParamsAreMutable)
{
    // Fig. 3 style: `for (...; len >= 32; len -= 32)`.
    const int64_t v = evalInt(R"(
        fn main(len: i32) -> i32 {
            var iters: i32 = 0;
            while (len >= 32) {
                len = len - 32;
                iters = iters + 1;
            }
            return iters * 100 + len;
        })", "main", {100});
    EXPECT_EQ(v, 304);
}

TEST(IrGen, ImplicitReturnZero)
{
    EXPECT_EQ(evalInt("fn main() -> i32 { }", "main"), 0);
}

// ---- semantic errors ------------------------------------------------------

TEST(IrGen, Errors)
{
    EXPECT_THROW(compileMiniLang(
        "fn main() -> i32 { return x; }", "t"), FatalError);
    EXPECT_THROW(compileMiniLang(
        "fn main() -> i32 { var x: i32 = 1.5; return x; }", "t"),
        FatalError);
    EXPECT_THROW(compileMiniLang(
        "fn main() -> i32 { var x: i64 = 1; var y: i32 = x; return y; }",
        "t"), FatalError);
    EXPECT_THROW(compileMiniLang(
        "fn main() -> i32 { break; }", "t"), FatalError);
    EXPECT_THROW(compileMiniLang(
        "fn main() -> i32 { if (1) { } return 0; }", "t"), FatalError);
    EXPECT_THROW(compileMiniLang(
        "fn main() -> i32 { return f(); }", "t"), FatalError);
    EXPECT_THROW(compileMiniLang(
        "fn f() -> i32 { return 0; } fn f() -> i32 { return 1; }", "t"),
        FatalError);
    EXPECT_THROW(compileMiniLang(
        "fn main() -> i32 { var x: i32 = 0; var x: i32 = 1; return x; }",
        "t"), FatalError);
}

TEST(IrGen, ProducesVerifiedSSA)
{
    auto mod = compileMiniLang(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                if (i % 3 == 0) {
                    s = s + i;
                } else if (i % 3 == 1) {
                    s = s - i;
                }
            }
            return s;
        })", "t");
    const std::string text = moduleToString(*mod);
    EXPECT_NE(text.find("phi"), std::string::npos);
    EXPECT_EQ(text.find("alloca"), std::string::npos);
}

} // namespace
} // namespace softcheck
