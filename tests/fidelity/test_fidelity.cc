#include <gtest/gtest.h>

#include <cmath>

#include "fidelity/fidelity.hh"
#include "support/rng.hh"

namespace softcheck
{
namespace
{

std::vector<double>
rampSignal(std::size_t n)
{
    std::vector<double> s(n);
    for (std::size_t i = 0; i < n; ++i)
        s[i] = static_cast<double>(i % 256);
    return s;
}

TEST(Psnr, IdenticalIsInfinite)
{
    auto s = rampSignal(256);
    EXPECT_TRUE(std::isinf(psnr(s, s)));
    EXPECT_GT(psnr(s, s), 0.0);
}

TEST(Psnr, KnownMse)
{
    // Uniform error of 1 on every sample: MSE = 1, PSNR = 20log10(255).
    auto golden = rampSignal(512);
    auto test = golden;
    for (double &v : test)
        v += 1.0;
    EXPECT_NEAR(psnr(golden, test), 20.0 * std::log10(255.0), 1e-9);
}

TEST(Psnr, SmallPerturbationAboveThreshold)
{
    auto golden = rampSignal(1024);
    auto test = golden;
    Rng rng(1);
    for (double &v : test)
        v += (rng.nextDouble() - 0.5) * 4.0;
    EXPECT_GT(psnr(golden, test), 30.0);
}

TEST(Psnr, LargeCorruptionBelowThreshold)
{
    auto golden = rampSignal(1024);
    auto test = golden;
    for (std::size_t i = 0; i < test.size() / 2; ++i)
        test[i] = 255.0 - test[i];
    EXPECT_LT(psnr(golden, test), 30.0);
}

TEST(Psnr, LengthMismatchIsWorst)
{
    auto golden = rampSignal(64);
    auto test = rampSignal(65);
    EXPECT_TRUE(std::isinf(psnr(golden, test)));
    EXPECT_LT(psnr(golden, test), 0.0);
}

TEST(Psnr, NonFiniteCorruptionIsWorst)
{
    auto golden = rampSignal(32);
    auto test = golden;
    test[5] = std::numeric_limits<double>::infinity();
    EXPECT_LT(psnr(golden, test), 0.0);
}

TEST(SegSnr, IdenticalIsMax)
{
    auto s = rampSignal(1024);
    EXPECT_DOUBLE_EQ(segmentalSnr(s, s), 120.0);
}

TEST(SegSnr, LocalCorruptionOnlyHitsItsFrame)
{
    auto golden = rampSignal(1024);
    auto test = golden;
    test[3] += 50.0; // one bad sample in frame 0
    const double seg = segmentalSnr(golden, test, 256);
    // 3 of 4 frames perfect (120 each); one degraded.
    EXPECT_GT(seg, 90.0);
    EXPECT_LT(seg, 120.0);
}

TEST(SegSnr, PerFrameClamping)
{
    std::vector<double> golden(512, 100.0);
    auto test = golden;
    for (std::size_t i = 0; i < 256; ++i)
        test[i] = -1.0e9; // catastrophic first frame clamps to 0 dB
    const double seg = segmentalSnr(golden, test, 256);
    EXPECT_NEAR(seg, 60.0, 1e-9); // (0 + 120) / 2
}

TEST(SegSnr, SilentPaddingFramesDoNotInflateAverage)
{
    // Two real frames plus two all-silent padding frames. The silent
    // frames used to score the 120 dB cap and drag a heavily corrupted
    // signal's average up; they must simply not count.
    std::vector<double> golden(1024, 0.0);
    for (std::size_t i = 0; i < 512; ++i)
        golden[i] = 100.0;
    auto test = golden;
    for (std::size_t i = 0; i < 256; ++i)
        test[i] = -1.0e9; // first frame clamps to 0 dB
    const double seg = segmentalSnr(golden, test, 256);
    EXPECT_NEAR(seg, 60.0, 1e-9); // (0 + 120) / 2, not (0+120+240)/4
}

TEST(SegSnr, CorruptedSilentFrameStillCounts)
{
    // A frame with zero golden signal but nonzero noise is real
    // corruption (0 dB), not padding.
    std::vector<double> golden(512, 0.0);
    for (std::size_t i = 256; i < 512; ++i)
        golden[i] = 100.0;
    auto test = golden;
    test[0] = 50.0; // corruption inside the silent frame
    const double seg = segmentalSnr(golden, test, 256);
    EXPECT_NEAR(seg, 60.0, 1e-9); // (0 + 120) / 2
}

TEST(SegSnr, AllSilentIsNoFramesSentinel)
{
    std::vector<double> golden(512, 0.0);
    const double seg = segmentalSnr(golden, golden, 256);
    EXPECT_TRUE(std::isinf(seg));
    EXPECT_LT(seg, 0.0);
}

TEST(Mismatch, CountsExactDifferences)
{
    std::vector<double> a{1, 2, 3, 4};
    std::vector<double> b{1, 9, 3, 9};
    EXPECT_DOUBLE_EQ(mismatchFraction(a, b), 0.5);
    EXPECT_DOUBLE_EQ(mismatchFraction(a, a), 0.0);
}

TEST(Mismatch, LengthMismatchIsTotal)
{
    std::vector<double> a{1, 2};
    std::vector<double> b{1};
    EXPECT_DOUBLE_EQ(mismatchFraction(a, b), 1.0);
}

TEST(Acceptable, ThresholdDirections)
{
    EXPECT_TRUE(fidelityAcceptable(FidelityKind::Psnr, 35.0, 30.0));
    EXPECT_FALSE(fidelityAcceptable(FidelityKind::Psnr, 25.0, 30.0));
    EXPECT_TRUE(
        fidelityAcceptable(FidelityKind::SegmentalSnr, 95.0, 80.0));
    EXPECT_FALSE(
        fidelityAcceptable(FidelityKind::SegmentalSnr, 60.0, 80.0));
    EXPECT_TRUE(fidelityAcceptable(FidelityKind::Mismatch, 0.05, 0.10));
    EXPECT_FALSE(fidelityAcceptable(FidelityKind::Mismatch, 0.15, 0.10));
    EXPECT_TRUE(
        fidelityAcceptable(FidelityKind::ClassErrorDelta, 0.0, 0.10));
}

TEST(Acceptable, ScoreDispatch)
{
    auto g = rampSignal(256);
    EXPECT_TRUE(std::isinf(fidelityScore(FidelityKind::Psnr, g, g)));
    EXPECT_DOUBLE_EQ(fidelityScore(FidelityKind::Mismatch, g, g), 0.0);
    EXPECT_DOUBLE_EQ(
        fidelityScore(FidelityKind::SegmentalSnr, g, g), 120.0);
}

} // namespace
} // namespace softcheck
