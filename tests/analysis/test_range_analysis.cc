/**
 * @file
 * Interval value-range analysis tests: constant propagation through
 * arithmetic transfers, loop widening/narrowing, branch-condition
 * refinement, the arbitrary-operand transfer used for vacuous-check
 * detection, and soundness spot checks against interpreter-observed
 * values on real workload kernels.
 */

#include <gtest/gtest.h>

#include "analysis/range_analysis.hh"
#include "common/test_util.hh"
#include "interp/exec_module.hh"
#include "ir/irbuilder.hh"
#include "profile/value_profiler.hh"
#include "workloads/workload.hh"

using namespace softcheck;

namespace
{

TEST(IntRange, LatticeBasics)
{
    EXPECT_TRUE(IntRange::bottom().isBottom());
    EXPECT_TRUE(IntRange::point(7).isPoint());
    EXPECT_EQ(IntRange::full(8).lo, -128);
    EXPECT_EQ(IntRange::full(8).hi, 127);
    EXPECT_EQ(IntRange::full(1).lo, -1); // i1 true is sign-extended
    EXPECT_EQ(IntRange::full(1).hi, 0);

    const IntRange a{0, 10}, b{5, 20};
    EXPECT_EQ(a.join(b), (IntRange{0, 20}));
    EXPECT_EQ(a.meet(b), (IntRange{5, 10}));
    EXPECT_TRUE((IntRange{0, 3}.meet(IntRange{5, 9})).isBottom());
    EXPECT_TRUE(a.join(IntRange::bottom()) == a);
    EXPECT_TRUE(a.containsRange(IntRange::bottom()));
}

TEST(RangeAnalysis, ConstantArithmeticFolds)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    IRBuilder b(m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    auto *add = b.createAdd(b.constI32(3), b.constI32(4), "s");
    auto *mul = b.createMul(add, b.constI32(10), "m");
    auto *sub = b.createSub(mul, b.constI32(70), "z");
    b.createRet(sub);
    f->renumber();

    RangeAnalysis ra(*f);
    EXPECT_EQ(ra.intRange(add), IntRange::point(7));
    EXPECT_EQ(ra.intRange(mul), IntRange::point(70));
    EXPECT_EQ(ra.intRange(sub), IntRange::point(0));
}

TEST(RangeAnalysis, ArgumentsAreFullDomain)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *masked = b.createAnd(x, b.constI32(0xff), "lo");
    b.createRet(masked);
    f->renumber();

    RangeAnalysis ra(*f);
    EXPECT_TRUE(ra.intRange(x).isFull(32));
    // and with a non-negative mask bounds the result.
    EXPECT_TRUE((IntRange{0, 255}).containsRange(ra.intRange(masked)));
}

TEST(RangeAnalysis, LoopWideningTerminatesAndNarrows)
{
    // for (i = 0; i < 10; ++i);  return i;
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    IRBuilder b(m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *head = f->addBlock("head");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *exit = f->addBlock("exit");

    b.setInsertPoint(entry);
    b.createBr(head);

    b.setInsertPoint(head);
    auto *i = b.createPhi(Type::i32(), "i");
    auto *cmp = b.createICmp(Predicate::Slt, i, b.constI32(10), "c");
    b.createCondBr(cmp, body, exit);

    b.setInsertPoint(body);
    auto *next = b.createAdd(i, b.constI32(1), "inc");
    b.createBr(head);

    i->addIncoming(b.constI32(0), entry);
    i->addIncoming(next, body);

    b.setInsertPoint(exit);
    b.createRet(i);
    f->renumber();

    RangeAnalysis ra(*f);
    // Termination alone is part of the test; precision: narrowing must
    // recover the loop bounds from the widened header phi.
    EXPECT_TRUE((IntRange{0, 10}).containsRange(ra.intRange(i)));
    EXPECT_TRUE(ra.intRange(i).contains(0));
    EXPECT_TRUE(ra.intRange(i).contains(10));
    // In the body the branch guard caps i at 9.
    const IntRange in_body = ra.intRangeAt(i, body);
    EXPECT_TRUE((IntRange{0, 9}).containsRange(in_body));
    EXPECT_TRUE((IntRange{1, 10}).containsRange(ra.intRange(next)));
}

TEST(RangeAnalysis, BranchRefinementNarrowsBothEdges)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *neg = f->addBlock("neg");
    BasicBlock *nonneg = f->addBlock("nonneg");
    b.setInsertPoint(entry);
    auto *cmp = b.createICmp(Predicate::Slt, x, b.constI32(0), "c");
    b.createCondBr(cmp, neg, nonneg);
    b.setInsertPoint(neg);
    b.createRet(b.constI32(-1));
    b.setInsertPoint(nonneg);
    b.createRet(b.constI32(1));
    f->renumber();

    RangeAnalysis ra(*f);
    EXPECT_TRUE(ra.intRange(x).isFull(32));
    EXPECT_EQ(ra.intRangeAt(x, neg).hi, -1);
    EXPECT_EQ(ra.intRangeAt(x, nonneg).lo, 0);
}

TEST(RangeAnalysis, ArbitraryOperandTransferKeepsImmediates)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *masked = b.createAnd(x, b.constI32(15), "m");
    auto *rem = b.createURem(x, b.constI32(8), "r");
    auto *wide = b.createAdd(x, b.constI32(1), "w");
    b.createRet(masked);
    f->renumber();

    // A corrupted register still can't escape an immediate mask...
    EXPECT_TRUE((IntRange{0, 15})
                    .containsRange(intTransferArbitraryOperands(*masked)));
    EXPECT_TRUE((IntRange{0, 7})
                    .containsRange(intTransferArbitraryOperands(*rem)));
    // ...but addition wraps, so the result spans the whole domain.
    EXPECT_TRUE(intTransferArbitraryOperands(*wide).isFull(32));
    (void)rem;
}

TEST(RangeAnalysis, TruncAndExtTransfers)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *c = b.constI32(300);
    auto *t8 = b.createCast(Opcode::Trunc, c, Type::i8(), "t");
    auto *z = b.createCast(Opcode::ZExt, t8, Type::i32(), "z");
    auto *s = b.createCast(Opcode::SExt, t8, Type::i32(), "s");
    b.createRet(z);
    f->renumber();

    RangeAnalysis ra(*f);
    // 300 & 0xff = 44 (fits in i8 as +44).
    EXPECT_EQ(ra.intRange(t8), IntRange::point(44));
    EXPECT_EQ(ra.intRange(z), IntRange::point(44));
    EXPECT_EQ(ra.intRange(s), IntRange::point(44));
}

/**
 * Soundness spot check on real kernels: every value the interpreter
 * actually produced at a profiling site must lie within the static
 * range computed for that instruction.
 */
class RangeSoundness : public ::testing::TestWithParam<const char *>
{};

TEST_P(RangeSoundness, ObservedValuesWithinStaticRange)
{
    const Workload &w = getWorkload(GetParam());
    auto mod = compileMiniLang(w.source, w.name);
    assignProfileSites(*mod);
    ExecModule em(*mod);
    auto run = prepareRun(w.makeInput(true));
    ValueProfiler profiler(em.numProfileSites(), 5);
    ExecOptions opts;
    opts.profiler = &profiler;
    Interpreter interp(em, *run.mem);
    auto r = interp.run(em.functionIndex(w.entry), run.args, opts);
    ASSERT_TRUE(r.ok());

    unsigned sites_checked = 0;
    for (Function *fn : mod->functions()) {
        RangeAnalysis ra(*fn);
        for (const auto &bb : *fn) {
            for (const auto &inst : *bb) {
                if (inst->profileId() < 0 || !inst->type().isInteger())
                    continue;
                const OnlineHistogram &h = profiler.site(
                    static_cast<unsigned>(inst->profileId()));
                if (h.totalCount() == 0)
                    continue; // site never executed
                const IntRange range = ra.intRange(inst.get());
                EXPECT_TRUE(range.contains(
                    static_cast<int64_t>(h.minSeen())))
                    << w.name << " %" << inst->name() << " observed "
                    << h.minSeen() << " outside " << range.str();
                EXPECT_TRUE(range.contains(
                    static_cast<int64_t>(h.maxSeen())))
                    << w.name << " %" << inst->name() << " observed "
                    << h.maxSeen() << " outside " << range.str();
                ++sites_checked;
            }
        }
    }
    EXPECT_GT(sites_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, RangeSoundness,
                         ::testing::Values("tiff2bw", "g721enc",
                                           "kmeans", "jpegdec"));

} // namespace
