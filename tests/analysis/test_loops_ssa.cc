#include <gtest/gtest.h>

#include "analysis/cfg_utils.hh"
#include "analysis/dominance_verify.hh"
#include "analysis/loop_info.hh"
#include "analysis/mem2reg.hh"
#include "analysis/producer_chain.hh"
#include "common/test_util.hh"
#include "frontend/compile.hh"

namespace softcheck
{
namespace
{

std::unique_ptr<Module>
compile(const char *src)
{
    return compileMiniLang(src, "t");
}

TEST(LoopInfo, SingleLoopDetected)
{
    auto mod = compile(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + i;
            }
            return s;
        })");
    Function *f = mod->getFunction("main");
    DominatorTree dt(*f);
    LoopInfo li(*f, dt);
    ASSERT_EQ(li.loops().size(), 1u);
    const Loop &loop = *li.loops()[0];
    EXPECT_TRUE(li.isHeader(loop.header));
    EXPECT_EQ(loop.depth, 1u);
    EXPECT_GE(loop.blocks.size(), 3u); // cond, body, step at least
}

TEST(LoopInfo, NestedLoopsHaveDepths)
{
    auto mod = compile(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                for (var j: i32 = 0; j < n; j = j + 1) {
                    s = s + 1;
                }
            }
            return s;
        })");
    Function *f = mod->getFunction("main");
    DominatorTree dt(*f);
    LoopInfo li(*f, dt);
    ASSERT_EQ(li.loops().size(), 2u);
    unsigned inner = 0, outer = 0;
    for (const auto &l : li.loops()) {
        if (l->depth == 2)
            ++inner;
        if (l->depth == 1)
            ++outer;
    }
    EXPECT_EQ(inner, 1u);
    EXPECT_EQ(outer, 1u);
}

TEST(LoopInfo, InnerLoopParentIsOuter)
{
    auto mod = compile(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            while (s < n) {
                var j: i32 = 0;
                while (j < 4) {
                    j = j + 1;
                    s = s + 1;
                }
            }
            return s;
        })");
    Function *f = mod->getFunction("main");
    DominatorTree dt(*f);
    LoopInfo li(*f, dt);
    ASSERT_EQ(li.loops().size(), 2u);
    const Loop *inner = nullptr, *outer = nullptr;
    for (const auto &l : li.loops()) {
        (l->depth == 2 ? inner : outer) = l.get();
    }
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(inner->parent, outer);
    EXPECT_TRUE(outer->contains(inner->header));
}

TEST(Mem2Reg, LoopVariableBecomesHeaderPhi)
{
    auto mod = compile(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + i;
            }
            return s;
        })");
    Function *f = mod->getFunction("main");
    // compileMiniLang already ran mem2reg: no allocas/loads remain.
    unsigned allocas = 0, phis_in_headers = 0;
    DominatorTree dt(*f);
    LoopInfo li(*f, dt);
    for (auto &bb : *f) {
        for (auto &inst : *bb) {
            if (inst->opcode() == Opcode::Alloca)
                ++allocas;
        }
        if (li.isHeader(bb.get()))
            phis_in_headers +=
                static_cast<unsigned>(bb->phis().size());
    }
    EXPECT_EQ(allocas, 0u);
    // s and i both live across iterations.
    EXPECT_EQ(phis_in_headers, 2u);
}

TEST(Mem2Reg, ArraysAreNotPromoted)
{
    auto mod = compile(R"(
        fn main(n: i32) -> i32 {
            var a: i32[4];
            a[0] = n;
            return a[0];
        })");
    Function *f = mod->getFunction("main");
    unsigned allocas = 0;
    for (auto &bb : *f)
        for (auto &inst : *bb)
            if (inst->opcode() == Opcode::Alloca)
                ++allocas;
    EXPECT_EQ(allocas, 1u);
}

TEST(Mem2Reg, UninitializedReadYieldsZero)
{
    // 'var x: i32;' has an implicit zero initializer in the frontend,
    // but conditional stores exercise the phi-zero path.
    const int64_t v = testutil::evalInt(R"(
        fn main(c: i32) -> i32 {
            var x: i32 = 0;
            if (c > 0) {
                x = 5;
            }
            return x;
        })", "main", {0});
    EXPECT_EQ(v, 0);
}

TEST(CfgUtils, RemoveUnreachableAfterReturn)
{
    auto mod = compile(R"(
        fn main(n: i32) -> i32 {
            return n;
        })");
    // Dead blocks were already removed; function must verify.
    Function *f = mod->getFunction("main");
    EXPECT_TRUE(verifyDominance(*f).empty());
}

TEST(CfgUtils, DeadCodeEliminationRemovesPhiCycles)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::voidTy());
    auto *a = f->addBlock("a");
    auto *h = f->addBlock("h");
    auto *exitb = f->addBlock("exit");
    IRBuilder b(m);
    b.setInsertPoint(a);
    b.createBr(h);
    b.setInsertPoint(h);
    auto *phi = b.createPhi(Type::i32());
    auto *inc = b.createAdd(phi, m.getConstInt(Type::i32(), int64_t{1}));
    phi->addIncoming(m.getConstInt(Type::i32(), int64_t{0}), a);
    phi->addIncoming(inc, h);
    b.createCondBr(m.getTrue(), h, exitb);
    b.setInsertPoint(exitb);
    b.createRet();
    // phi <-> inc form a dead cycle (no side-effecting user).
    const unsigned removed = eliminateDeadCode(*f);
    EXPECT_EQ(removed, 2u);
}

TEST(ProducerChain, CollectsTopologically)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    auto *bb = f->addBlock("entry");
    IRBuilder b(m);
    b.setInsertPoint(bb);
    auto *i1 = b.createAdd(x, x);
    auto *i2 = b.createMul(i1, x);
    auto *i3 = b.createSub(i2, i1);
    b.createRet(i3);
    auto chain = producerChain(i3);
    ASSERT_EQ(chain.size(), 3u);
    // Topological: defs before users.
    EXPECT_EQ(chain[0], i1);
    EXPECT_EQ(chain.back(), i3);
}

TEST(ProducerChain, TerminatesAtLoads)
{
    auto mod = compile(R"(
        fn main(p: ptr<i32>, n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + p[i] * 2;
            }
            return s;
        })");
    Function *f = mod->getFunction("main");
    // Find the "add" feeding the s phi and walk its chain: it must not
    // include the load.
    for (auto &bb : *f) {
        for (auto &inst : *bb) {
            if (inst->opcode() == Opcode::Load) {
                EXPECT_EQ(chainDisposition(*inst),
                          ChainDisposition::Terminate);
            }
            if (inst->opcode() == Opcode::Mul) {
                auto chain = producerChain(inst.get());
                for (Instruction *c : chain)
                    EXPECT_NE(c->opcode(), Opcode::Load);
            }
        }
    }
}

TEST(ProducerChain, StopPredicateCutsChain)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    auto *bb = f->addBlock("entry");
    IRBuilder b(m);
    b.setInsertPoint(bb);
    auto *i1 = b.createAdd(x, x);
    auto *i2 = b.createMul(i1, x);
    b.createRet(i2);
    ProducerChainOptions opts;
    opts.stopAt = [&](const Instruction &inst) { return &inst == i1; };
    auto chain = producerChain(i2, opts);
    ASSERT_EQ(chain.size(), 1u);
    EXPECT_EQ(chain[0], i2);
    auto stops = chainStopPoints(i2, opts);
    ASSERT_EQ(stops.size(), 1u);
    EXPECT_EQ(stops[0], i1);
}

TEST(DominanceVerify, AcceptsCompiledFunctions)
{
    auto mod = compile(R"(
        fn helper(a: i32) -> i32 {
            return a * 3;
        }
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                if (i > 2 && i < 7) {
                    s = s + helper(i);
                }
            }
            return s;
        })");
    for (Function *f : mod->functions())
        EXPECT_TRUE(verifyDominance(*f).empty());
}

TEST(DominanceVerify, DetectsViolation)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    auto *a = f->addBlock("a");
    auto *b1 = f->addBlock("b");
    auto *c = f->addBlock("c");
    IRBuilder b(m);
    b.setInsertPoint(a);
    b.createCondBr(m.getTrue(), b1, c);
    b.setInsertPoint(b1);
    auto *v = b.createAdd(m.getConstInt(Type::i32(), int64_t{1}),
                          m.getConstInt(Type::i32(), int64_t{2}));
    b.createBr(c);
    b.setInsertPoint(c);
    b.createRet(v); // v does not dominate c (a->c bypasses b)
    auto probs = verifyDominance(*f);
    ASSERT_FALSE(probs.empty());
}

} // namespace
} // namespace softcheck
