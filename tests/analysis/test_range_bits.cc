/**
 * @file
 * Bit-level range-analysis query tests: known-zero/known-one bits at
 * interval boundaries, signed-wrap and sign-bit edges, the flipped-
 * value hull the fault-space partitioner meets against check pass
 * sets, and the interplay with widening/narrowing at loop headers.
 * Exactness is asserted where the algorithm is exact; everywhere else
 * soundness is brute-forced by enumerating the interval.
 */

#include <gtest/gtest.h>

#include <climits>
#include <cstdint>

#include "analysis/range_analysis.hh"
#include "ir/irbuilder.hh"

using namespace softcheck;

namespace
{

TEST(KnownBits, PointIsFullyKnown)
{
    const IntRange r = IntRange::point(0x5A);
    EXPECT_EQ(knownOneBits(r, 8), 0x5Au);
    EXPECT_EQ(knownZeroBits(r, 8), 0xA5u);
    // The raw pattern view truncates to the width.
    EXPECT_EQ(knownOneBits(IntRange::point(-1), 8), 0xFFu);
    EXPECT_EQ(knownZeroBits(IntRange::point(-1), 8), 0u);
    EXPECT_EQ(knownOneBits(IntRange::point(-1), 64), ~0ULL);
}

TEST(KnownBits, IntervalBoundariesFixHighBits)
{
    // [8, 15]: the endpoints 0b01000 and 0b01111 agree above bit 3,
    // so bit 3 is known one and bits 4..7 known zero; the low three
    // bits sweep freely.
    const IntRange r{8, 15};
    EXPECT_EQ(knownOneBits(r, 8), 0x08u);
    EXPECT_EQ(knownZeroBits(r, 8), 0xF0u);
}

TEST(KnownBits, SignedDomainEdges)
{
    // The most negative value: a lone sign bit.
    EXPECT_EQ(knownOneBits(IntRange::point(-128), 8), 0x80u);
    EXPECT_EQ(knownZeroBits(IntRange::point(-128), 8), 0x7Fu);
    // The full domain wraps through the sign boundary: nothing known.
    EXPECT_EQ(knownOneBits(IntRange::full(8), 8), 0u);
    EXPECT_EQ(knownZeroBits(IntRange::full(8), 8), 0u);
    // Mixed sign intersects the two halves' knowledge: {-1, 0} holds
    // the patterns 0xFF and 0x00, which agree on no bit.
    EXPECT_EQ(knownOneBits(IntRange{-1, 0}, 8), 0u);
    EXPECT_EQ(knownZeroBits(IntRange{-1, 0}, 8), 0u);
}

TEST(KnownBits, BottomIsVacuouslyKnown)
{
    EXPECT_EQ(knownZeroBits(IntRange::bottom(), 8), 0xFFu);
    EXPECT_EQ(knownOneBits(IntRange::bottom(), 8), 0xFFu);
}

TEST(FlippedRange, KnownBitShiftIsExact)
{
    // [8, 15] with bit 3 known one: the flip is a uniform -8.
    EXPECT_EQ(flippedRange(IntRange{8, 15}, 8, 3), (IntRange{0, 7}));
    // Bit 4 known zero: uniform +16.
    EXPECT_EQ(flippedRange(IntRange{8, 15}, 8, 4), (IntRange{24, 31}));
}

TEST(FlippedRange, SignBitSplitsAtZero)
{
    // Non-negative values drop by 2^(w-1)...
    EXPECT_EQ(flippedRange(IntRange{0, 5}, 8, 7),
              (IntRange{-128, -123}));
    // ...negative values rise; a mixed-sign interval joins both
    // shifted halves, spanning nearly the whole domain.
    EXPECT_EQ(flippedRange(IntRange{-2, 1}, 8, 7),
              (IntRange{-128, 127}));
}

TEST(FlippedRange, WidthZeroMeans64AndBottomPropagates)
{
    EXPECT_EQ(flippedRange(IntRange::point(0), 0, 63),
              IntRange::point(INT64_MIN));
    EXPECT_TRUE(flippedRange(IntRange::bottom(), 8, 0).isBottom());
}

/** Enumerate an i8 interval: every value's raw pattern must respect
 * the claimed known bits, and every single-bit flip must land inside
 * the claimed hull (in the signed i8 domain the interpreter uses). */
void
bruteForceWidth8(int64_t lo, int64_t hi)
{
    SCOPED_TRACE(testing::Message() << "[" << lo << ", " << hi << "]");
    const IntRange r{lo, hi};
    const uint64_t kz = knownZeroBits(r, 8);
    const uint64_t ko = knownOneBits(r, 8);
    for (int64_t v = lo; v <= hi; ++v) {
        const uint64_t pat = static_cast<uint64_t>(v) & 0xFF;
        EXPECT_EQ(pat & kz, 0u) << "v=" << v;
        EXPECT_EQ(pat & ko, ko) << "v=" << v;
    }
    for (unsigned bit = 0; bit < 8; ++bit) {
        const IntRange f = flippedRange(r, 8, bit);
        EXPECT_GE(f.lo, -128);
        EXPECT_LE(f.hi, 127);
        for (int64_t v = lo; v <= hi; ++v) {
            const auto flipped = static_cast<int8_t>(
                (static_cast<uint64_t>(v) ^ (1ULL << bit)) & 0xFF);
            EXPECT_TRUE(f.contains(flipped))
                << "v=" << v << " bit=" << bit << " hull=" << f.str();
        }
    }
}

TEST(FlippedRange, BruteForceSoundnessWidth8)
{
    bruteForceWidth8(8, 15);
    bruteForceWidth8(-128, -1);
    bruteForceWidth8(-3, 5);
    bruteForceWidth8(0, 0);
    bruteForceWidth8(5, 6);
    bruteForceWidth8(100, 127);
    bruteForceWidth8(-128, 127);
}

/** Widening at the loop header must not destroy bit-level knowledge:
 * after narrowing recovers the counting-loop bounds, the phi's known
 * bits and sign-bit flip hull are those of the narrowed interval. */
TEST(KnownBits, LoopHeaderWideningThenNarrowing)
{
    // for (i = 0; i < 10; ++i);  return i;
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    IRBuilder b(m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *head = f->addBlock("head");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *exit = f->addBlock("exit");

    b.setInsertPoint(entry);
    b.createBr(head);

    b.setInsertPoint(head);
    auto *i = b.createPhi(Type::i32(), "i");
    auto *cmp = b.createICmp(Predicate::Slt, i, b.constI32(10), "c");
    b.createCondBr(cmp, body, exit);

    b.setInsertPoint(body);
    auto *next = b.createAdd(i, b.constI32(1), "inc");
    b.createBr(head);

    i->addIncoming(b.constI32(0), entry);
    i->addIncoming(next, body);

    b.setInsertPoint(exit);
    b.createRet(i);
    f->renumber();

    RangeAnalysis ra(*f);
    const IntRange r = ra.intRange(i);
    ASSERT_EQ(r, (IntRange{0, 10}));
    // [0, 10]: bits 4..31 (including the sign bit) are known zero,
    // bit 3 still swings between 8..10 and 0..7.
    EXPECT_EQ(knownZeroBits(r, 32), 0xFFFFFFF0u);
    EXPECT_EQ(knownOneBits(r, 32), 0u);
    // Sign-bit flip of a known-non-negative counter: a uniform drop
    // into the negative half.
    EXPECT_EQ(flippedRange(r, 32, 31),
              (IntRange{INT32_MIN, INT32_MIN + 10}));
}

} // namespace
