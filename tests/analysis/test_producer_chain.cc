/**
 * @file
 * Producer-chain tests: chain membership and topological order,
 * termination at loads/phis/calls, the stopAt predicate (Optimization 2
 * hook), and chainStopPoints.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/producer_chain.hh"
#include "common/test_util.hh"
#include "ir/irbuilder.hh"

using namespace softcheck;

namespace
{

bool
contains(const std::vector<Instruction *> &v, const Instruction *x)
{
    return std::find(v.begin(), v.end(), x) != v.end();
}

/** a*b + (load p) — a chain that includes mul/add but stops at the
 * load. */
struct ChainFixture : ::testing::Test
{
    Module m{"t"};
    Function *f = nullptr;
    Instruction *ld = nullptr, *mul = nullptr, *add = nullptr;

    void
    SetUp() override
    {
        f = m.createFunction("f", Type::i32());
        Argument *a = f->addArg(Type::i32(), "a");
        Argument *b = f->addArg(Type::i32(), "b");
        Argument *p = f->addArg(Type::ptr(), "p");
        IRBuilder ib(m);
        ib.setInsertPoint(f->addBlock("entry"));
        ld = ib.createLoad(Type::i32(), p, "ld");
        mul = ib.createMul(a, b, "mul");
        add = ib.createAdd(mul, ld, "add");
        ib.createRet(add);
        f->renumber();
    }
};

TEST_F(ChainFixture, IncludesPureOpsStopsAtLoad)
{
    EXPECT_EQ(chainDisposition(*mul), ChainDisposition::Include);
    EXPECT_EQ(chainDisposition(*ld), ChainDisposition::Terminate);

    auto chain = producerChain(add);
    EXPECT_TRUE(contains(chain, add));
    EXPECT_TRUE(contains(chain, mul));
    EXPECT_FALSE(contains(chain, ld));
}

TEST_F(ChainFixture, TopologicalOrder)
{
    auto chain = producerChain(add);
    const auto mul_pos =
        std::find(chain.begin(), chain.end(), mul) - chain.begin();
    const auto add_pos =
        std::find(chain.begin(), chain.end(), add) - chain.begin();
    EXPECT_LT(mul_pos, add_pos) << "producers must precede consumers";
}

TEST_F(ChainFixture, StopAtPredicateCutsChain)
{
    ProducerChainOptions opts;
    opts.stopAt = [this](const Instruction &i) { return &i == mul; };
    auto chain = producerChain(add, opts);
    EXPECT_TRUE(contains(chain, add));
    EXPECT_FALSE(contains(chain, mul))
        << "stop values must not be in the chain";

    auto stops = chainStopPoints(add, opts);
    ASSERT_EQ(stops.size(), 1u);
    EXPECT_EQ(stops[0], mul);
}

TEST_F(ChainFixture, StopAtAppliesToRootToo)
{
    // The predicate is consulted before anything else, including for
    // the root: callers that must keep the root (duplication roots)
    // exclude it in their predicate.
    ProducerChainOptions opts;
    opts.stopAt = [](const Instruction &) { return true; };
    EXPECT_TRUE(producerChain(add, opts).empty());
    auto stops = chainStopPoints(add, opts);
    ASSERT_EQ(stops.size(), 1u);
    EXPECT_EQ(stops[0], add);
}

TEST_F(ChainFixture, StopAtBeatsTerminateDisposition)
{
    // A load would terminate anyway, but when the predicate claims it
    // first it is recorded as a stop point (an Opt-2 check site).
    ProducerChainOptions opts;
    opts.stopAt = [this](const Instruction &i) { return &i == ld; };
    auto stops = chainStopPoints(add, opts);
    ASSERT_EQ(stops.size(), 1u);
    EXPECT_EQ(stops[0], ld);
}

TEST(ProducerChain, UnchainableRootYieldsEmptyChain)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *p = f->addArg(Type::ptr(), "p");
    IRBuilder ib(m);
    ib.setInsertPoint(f->addBlock("entry"));
    auto *ld = ib.createLoad(Type::i32(), p, "ld");
    ib.createRet(ld);
    f->renumber();

    EXPECT_TRUE(producerChain(ld).empty());
}

TEST(ProducerChain, PhiTerminatesButOperandsChainThrough)
{
    // phi -> add: the add chains, recursion stops at the phi without
    // including it.
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    IRBuilder ib(m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *head = f->addBlock("head");
    BasicBlock *exit = f->addBlock("exit");
    ib.setInsertPoint(entry);
    ib.createBr(head);
    ib.setInsertPoint(head);
    auto *phi = ib.createPhi(Type::i32(), "i");
    auto *inc = ib.createAdd(phi, ib.constI32(1), "inc");
    auto *cmp =
        ib.createICmp(Predicate::Slt, inc, ib.constI32(10), "c");
    ib.createCondBr(cmp, head, exit);
    phi->addIncoming(ib.constI32(0), entry);
    phi->addIncoming(inc, head);
    ib.setInsertPoint(exit);
    ib.createRet(inc);
    f->renumber();

    EXPECT_EQ(chainDisposition(*phi), ChainDisposition::Terminate);
    auto chain = producerChain(inc);
    EXPECT_TRUE(contains(chain, inc));
    EXPECT_FALSE(contains(chain, phi));
}

TEST(ProducerChain, SharedSubexpressionAppearsOnce)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *a = f->addArg(Type::i32(), "a");
    IRBuilder ib(m);
    ib.setInsertPoint(f->addBlock("entry"));
    auto *sq = ib.createMul(a, a, "sq");
    auto *sum = ib.createAdd(sq, sq, "sum");
    ib.createRet(sum);
    f->renumber();

    auto chain = producerChain(sum);
    EXPECT_EQ(std::count(chain.begin(), chain.end(), sq), 1);
}

} // namespace
