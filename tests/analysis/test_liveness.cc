/**
 * @file
 * Liveness-analysis tests at register-slot granularity: straight-line
 * def-use chains, the phi-on-edge convention (sources live at the
 * predecessor terminator, destinations defined before the successor's
 * first non-phi instruction), and loop-carried liveness.
 */

#include <gtest/gtest.h>

#include "analysis/liveness.hh"
#include "ir/irbuilder.hh"

using namespace softcheck;

namespace
{

unsigned
slotOf(const Value *v)
{
    EXPECT_GE(v->slot(), 0);
    return static_cast<unsigned>(v->slot());
}

TEST(Liveness, StraightLineDefUseChain)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *a = b.createAdd(x, b.constI32(1), "a");
    auto *c = b.createAdd(a, b.constI32(1), "c");
    auto *d = b.createAdd(c, b.constI32(1), "d");
    auto *ret = b.createRet(d);
    f->renumber();

    LivenessAnalysis la(*f);
    EXPECT_EQ(la.numSlots(), f->numSlots());
    // Each value dies right after its only read.
    EXPECT_TRUE(la.liveBefore(a, slotOf(x)));
    EXPECT_FALSE(la.liveBefore(c, slotOf(x)));
    EXPECT_TRUE(la.liveBefore(c, slotOf(a)));
    EXPECT_FALSE(la.liveBefore(d, slotOf(a)));
    EXPECT_TRUE(la.liveBefore(ret, slotOf(d)));
    EXPECT_FALSE(la.liveBefore(ret, slotOf(c)));
    // A slot is never live before its own definition executes.
    EXPECT_FALSE(la.liveBefore(a, slotOf(a)));
}

TEST(Liveness, MultipleReadsKeepAlive)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *a = b.createAdd(x, b.constI32(1), "a");
    auto *c = b.createMul(x, x, "c"); // second (and third) read of x
    auto *d = b.createAdd(a, c, "d");
    auto *ret = b.createRet(d);
    f->renumber();

    LivenessAnalysis la(*f);
    EXPECT_TRUE(la.liveBefore(a, slotOf(x)));
    EXPECT_TRUE(la.liveBefore(c, slotOf(x)));
    EXPECT_FALSE(la.liveBefore(d, slotOf(x)));
    EXPECT_TRUE(la.liveBefore(d, slotOf(a)));
    EXPECT_FALSE(la.liveBefore(ret, slotOf(a)));
}

TEST(Liveness, PhiOnEdgeConvention)
{
    // for (i = 0; i < 10; ++i);  return i;
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    IRBuilder b(m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *head = f->addBlock("head");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *exit = f->addBlock("exit");

    b.setInsertPoint(entry);
    b.createBr(head);

    b.setInsertPoint(head);
    auto *i = b.createPhi(Type::i32(), "i");
    auto *cmp = b.createICmp(Predicate::Slt, i, b.constI32(10), "c");
    b.createCondBr(cmp, body, exit);

    b.setInsertPoint(body);
    auto *next = b.createAdd(i, b.constI32(1), "inc");
    auto *latch = b.createBr(head);

    i->addIncoming(b.constI32(0), entry);
    i->addIncoming(next, body);

    b.setInsertPoint(exit);
    auto *ret = b.createRet(i);
    f->renumber();

    LivenessAnalysis la(*f);
    // The phi move happens on the edge: its source `next` is live at
    // the latch terminator, and dead again once the move lands (the
    // header's first non-phi instruction sees only `i` live).
    EXPECT_TRUE(la.liveBefore(latch, slotOf(next)));
    EXPECT_FALSE(la.liveBefore(cmp, slotOf(next)));
    // The phi destination is live throughout the loop: read by the
    // compare, the increment, and the exit return.
    EXPECT_TRUE(la.liveBefore(cmp, slotOf(i)));
    EXPECT_TRUE(la.liveBefore(next, slotOf(i)));
    EXPECT_TRUE(la.liveBefore(ret, slotOf(i)));
}

TEST(Liveness, ValueDeadOnOneSuccessorOnly)
{
    // `a` is read only on the taken edge; it must still be live at the
    // branch (some path reads it) but dead inside the other arm.
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *yes = f->addBlock("yes");
    BasicBlock *no = f->addBlock("no");

    b.setInsertPoint(entry);
    auto *a = b.createAdd(x, b.constI32(7), "a");
    auto *cmp = b.createICmp(Predicate::Slt, x, b.constI32(0), "c");
    auto *br = b.createCondBr(cmp, yes, no);

    b.setInsertPoint(yes);
    auto *rety = b.createRet(a);

    b.setInsertPoint(no);
    auto *retn = b.createRet(b.constI32(0));
    f->renumber();

    LivenessAnalysis la(*f);
    EXPECT_TRUE(la.liveBefore(br, slotOf(a)));
    EXPECT_TRUE(la.liveBefore(rety, slotOf(a)));
    EXPECT_FALSE(la.liveBefore(retn, slotOf(a)));
}

} // namespace
