/**
 * @file
 * Fault-space partitioner tests: the dead/masked/active site census,
 * the per-slot masked-bit fractions the campaign weight term uses,
 * the operand-fault-space-masked check classification, and a sanity
 * sweep over real hardened workload kernels.
 */

#include <gtest/gtest.h>

#include <climits>

#include "analysis/fault_space.hh"
#include "analysis/protection_audit.hh"
#include "core/pipeline.hh"
#include "frontend/compile.hh"
#include "ir/irbuilder.hh"
#include "workloads/workload.hh"

using namespace softcheck;

namespace
{

TEST(FaultSpace, SummaryPartitionsEverySite)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *a = b.createAdd(x, b.constI32(1), "a");
    auto *unused = b.createMul(x, b.constI32(3), "u");
    b.createRet(a);
    (void)unused;
    f->renumber();

    FunctionFaultSpace fs(*f);
    const FaultSpaceSummary s = fs.summarize();
    EXPECT_GT(s.totalSites, 0u);
    EXPECT_EQ(s.totalSites,
              s.deadSites + s.maskedSites + s.activeSites);
    EXPECT_GE(s.deadPct(), 0.0);
    EXPECT_LE(s.deadPct() + s.maskedPct(), 100.0);
    // `unused` is never read: all its sites are dead, so the function
    // has dead sites even in straight-line code.
    EXPECT_GT(s.deadSites, 0u);
}

TEST(FaultSpace, MaskedFractionMatchesMaskedBits)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *a = b.createAnd(x, b.constI32(0xFF), "a");
    b.createRet(a);
    f->renumber();

    FunctionFaultSpace fs(*f);
    for (unsigned slot = 0; slot < f->numSlots(); ++slot) {
        const unsigned width = fs.slotWidth(slot);
        ASSERT_GT(width, 0u);
        ASSERT_EQ(64 % width, 0u); // the exactness precondition
        const unsigned pop = static_cast<unsigned>(
            __builtin_popcountll(fs.maskedBits(slot)));
        EXPECT_EQ(fs.maskedSixtyFourths(slot), pop * (64 / width));
        // bitMasked agrees with the mask word bit for bit.
        for (unsigned bit = 0; bit < width; ++bit)
            EXPECT_EQ(fs.bitMasked(slot, bit),
                      ((fs.maskedBits(slot) >> bit) & 1) != 0);
        // No masked claims outside the slot's width.
        EXPECT_EQ(fs.maskedBits(slot) &
                      ~(width == 64 ? ~0ULL : (1ULL << width) - 1),
                  0u);
    }
}

TEST(FaultSpace, OperandFaultSpaceMaskedClassification)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *v = b.createAdd(x, b.constI32(1), "v");
    // Full-domain pass set: no flip of any operand bit can ever make
    // the check fire — its whole operand fault-space is masked.
    auto *full = b.createCheckRange(v, b.constI32(INT32_MIN),
                                    b.constI32(INT32_MAX), 0);
    // Tight pass set over an unconstrained value: plenty of flips
    // cross the boundary.
    auto *tight =
        b.createCheckRange(v, b.constI32(0), b.constI32(15), 1);
    b.createRet(v);
    f->renumber();

    RangeAnalysis ra(*f);
    EXPECT_TRUE(checkOperandFaultSpaceMasked(*full, ra));
    EXPECT_FALSE(checkOperandFaultSpaceMasked(*tight, ra));
}

TEST(FaultSpace, AuditSurfacesOperandMaskedChecks)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *v = b.createAdd(x, b.constI32(1), "v");
    b.createCheckRange(v, b.constI32(INT32_MIN), b.constI32(INT32_MAX),
                       0);
    b.createCheckRange(v, b.constI32(0), b.constI32(15), 1);
    b.createRet(v);
    f->renumber();

    RangeAnalysis ra(*f);
    const AuditResult r = auditProtection(*f, ra);
    ASSERT_EQ(r.checks.size(), 2u);
    EXPECT_EQ(r.operandMaskedChecks(), 1u);
    // The full-domain check is also vacuous (its pass set contains
    // every corrupted result), so the two analyses overlap there.
    EXPECT_EQ(r.vacuousAndOperandMasked(),
              std::min(r.vacuousChecks(), r.operandMaskedChecks()));
    for (const CheckReport &cr : r.checks)
        EXPECT_EQ(cr.operandFaultSpaceMasked, cr.checkId == 0);
}

/** The dead/masked/active partition must hold on every hardened
 * module too, and real kernels must show a nonempty dead stratum
 * (the pruning the stratified campaigns exploit). */
TEST(FaultSpace, RealWorkloadCensusIsConsistent)
{
    for (const char *name : {"tiff2bw", "g721enc"}) {
        SCOPED_TRACE(name);
        const Workload &w = getWorkload(name);
        auto mod = compileMiniLang(w.source, w.name);
        HardeningOptions hopts;
        hopts.mode = HardeningMode::FullDup;
        hardenModule(*mod, hopts, nullptr);
        for (Function *fn : mod->functions())
            fn->renumber();

        const ModuleFaultSpace mfs(*mod);
        const FaultSpaceSummary s = mfs.summarize();
        EXPECT_EQ(s.totalSites,
                  s.deadSites + s.maskedSites + s.activeSites);
        EXPECT_GT(s.deadSites, 0u);
        // Class census: every class has >= 1 site, the largest class
        // is no bigger than the active stratum.
        EXPECT_LE(s.largestClass, s.activeSites);
        uint64_t hist_total = 0;
        for (const uint64_t n : s.classSizeHist)
            hist_total += n;
        EXPECT_EQ(hist_total, s.classCount);
    }
}

} // namespace
