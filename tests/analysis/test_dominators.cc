#include <gtest/gtest.h>

#include "analysis/dominators.hh"
#include "ir/irbuilder.hh"

namespace softcheck
{
namespace
{

/**
 * Diamond CFG:  a -> {b, c} -> d
 */
struct Diamond
{
    Module m{"t"};
    Function *f;
    BasicBlock *a, *b, *c, *d;

    Diamond()
    {
        f = m.createFunction("f", Type::voidTy());
        a = f->addBlock("a");
        b = f->addBlock("b");
        c = f->addBlock("c");
        d = f->addBlock("d");
        IRBuilder ib(m);
        ib.setInsertPoint(a);
        ib.createCondBr(m.getTrue(), b, c);
        ib.setInsertPoint(b);
        ib.createBr(d);
        ib.setInsertPoint(c);
        ib.createBr(d);
        ib.setInsertPoint(d);
        ib.createRet();
    }
};

TEST(Dominators, DiamondIdoms)
{
    Diamond g;
    DominatorTree dt(*g.f);
    EXPECT_EQ(dt.idom(g.a), nullptr);
    EXPECT_EQ(dt.idom(g.b), g.a);
    EXPECT_EQ(dt.idom(g.c), g.a);
    EXPECT_EQ(dt.idom(g.d), g.a);
}

TEST(Dominators, DiamondDominates)
{
    Diamond g;
    DominatorTree dt(*g.f);
    EXPECT_TRUE(dt.dominates(g.a, g.d));
    EXPECT_TRUE(dt.dominates(g.a, g.a));
    EXPECT_FALSE(dt.dominates(g.b, g.d));
    EXPECT_FALSE(dt.dominates(g.b, g.c));
    EXPECT_FALSE(dt.dominates(g.d, g.a));
}

TEST(Dominators, DiamondFrontiers)
{
    Diamond g;
    DominatorTree dt(*g.f);
    EXPECT_TRUE(dt.frontier(g.b).count(g.d));
    EXPECT_TRUE(dt.frontier(g.c).count(g.d));
    EXPECT_TRUE(dt.frontier(g.a).empty());
    EXPECT_TRUE(dt.frontier(g.d).empty());
}

TEST(Dominators, LoopFrontierContainsHeader)
{
    // a -> h; h -> {body, exit}; body -> h
    Module m("t");
    Function *f = m.createFunction("f", Type::voidTy());
    auto *a = f->addBlock("a");
    auto *h = f->addBlock("h");
    auto *body = f->addBlock("body");
    auto *exit = f->addBlock("exit");
    IRBuilder ib(m);
    ib.setInsertPoint(a);
    ib.createBr(h);
    ib.setInsertPoint(h);
    ib.createCondBr(m.getTrue(), body, exit);
    ib.setInsertPoint(body);
    ib.createBr(h);
    ib.setInsertPoint(exit);
    ib.createRet();

    DominatorTree dt(*f);
    EXPECT_EQ(dt.idom(h), a);
    EXPECT_EQ(dt.idom(body), h);
    EXPECT_EQ(dt.idom(exit), h);
    // Back edge: body's frontier contains the loop header.
    EXPECT_TRUE(dt.frontier(body).count(h));
    EXPECT_TRUE(dt.frontier(h).count(h));
}

TEST(Dominators, UnreachableBlockExcluded)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::voidTy());
    auto *a = f->addBlock("a");
    auto *dead = f->addBlock("dead");
    IRBuilder ib(m);
    ib.setInsertPoint(a);
    ib.createRet();
    ib.setInsertPoint(dead);
    ib.createRet();
    DominatorTree dt(*f);
    EXPECT_TRUE(dt.reachable(a));
    EXPECT_FALSE(dt.reachable(dead));
    EXPECT_FALSE(dt.dominates(a, dead));
}

TEST(Dominators, InstructionLevelDominance)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    auto *bb = f->addBlock("entry");
    IRBuilder ib(m);
    ib.setInsertPoint(bb);
    auto *i1 = ib.createAdd(x, x);
    auto *i2 = ib.createAdd(i1, x);
    ib.createRet(i2);
    f->renumber();
    DominatorTree dt(*f);
    EXPECT_TRUE(dt.dominates(i1, i2));
    EXPECT_FALSE(dt.dominates(i2, i1));
}

TEST(Dominators, ChildrenPartitionReachableBlocks)
{
    Diamond g;
    DominatorTree dt(*g.f);
    const auto &kids = dt.children(g.a);
    EXPECT_EQ(kids.size(), 3u);
}

} // namespace
} // namespace softcheck
