/**
 * @file
 * Protection-audit tests: clean bills of health for genuinely hardened
 * modules, seeded-violation detection (mis-wired shadow phi, dropped
 * Opt-2 replacement check, non-dominating check operand, non-isomorphic
 * duplicate, duplicate check id), and the range-based vacuous /
 * false-positive-risk check classification.
 */

#include <gtest/gtest.h>

#include "analysis/producer_chain.hh"
#include "analysis/protection_audit.hh"
#include "common/test_util.hh"
#include "core/pipeline.hh"
#include "fault/campaign_internal.hh"
#include "ir/irbuilder.hh"
#include "profile/value_profiler.hh"
#include "workloads/workload.hh"

using namespace softcheck;
using campaign_detail::collectProfile;

namespace
{

bool
hasViolation(const AuditResult &r, AuditViolationKind k)
{
    for (const AuditViolation &v : r.violations)
        if (v.kind == k)
            return true;
    return false;
}

/** Compile + harden one workload (profile collected when needed). */
std::unique_ptr<Module>
hardened(const std::string &name, HardeningMode mode,
         HardeningReport *report_out = nullptr)
{
    const Workload &w = getWorkload(name);
    auto mod = compileMiniLang(w.source, w.name);
    assignProfileSites(*mod);
    ProfileData profile;
    const ProfileData *pp = nullptr;
    if (mode == HardeningMode::DupValChks) {
        CampaignConfig cfg;
        cfg.workload = name;
        profile = collectProfile(w, cfg, true);
        pp = &profile;
    }
    HardeningOptions hopts;
    hopts.mode = mode;
    HardeningReport rep = hardenModule(*mod, hopts, pp);
    if (report_out)
        *report_out = rep;
    return mod;
}

TEST(ProtectionAudit, HardenedWorkloadsAuditClean)
{
    for (HardeningMode mode :
         {HardeningMode::DupOnly, HardeningMode::DupValChks,
          HardeningMode::FullDup}) {
        HardeningReport rep;
        auto mod = hardened("tiff2bw", mode, &rep);
        AuditOptions opts;
        opts.allowUncheckedCuts = rep.uncheckedCutSites;
        AuditResult r = auditModule(*mod, opts);
        EXPECT_TRUE(r.violations.empty())
            << hardeningModeName(mode) << ": "
            << r.violations.front().message;
        if (mode != HardeningMode::Original)
            EXPECT_GT(r.counts.duplicated, 0u);
    }
}

TEST(ProtectionAudit, CountsPartitionOriginals)
{
    HardeningReport rep;
    auto mod = hardened("g721enc", HardeningMode::DupValChks, &rep);
    AuditOptions opts;
    opts.allowUncheckedCuts = rep.uncheckedCutSites;
    AuditResult r = auditModule(*mod, opts);
    const ProtectionCounts &c = r.counts;
    // duplicated/checkProtected overlap in bothProtected; the three
    // disjoint buckets must cover every original instruction.
    EXPECT_EQ(c.duplicated + c.checkProtected - c.bothProtected +
                  c.unprotected,
              c.originalInstructions);
}

TEST(ProtectionAudit, DetectsMisWiredShadowPhi)
{
    auto mod = hardened("tiff2bw", HardeningMode::DupOnly);
    // Find a shadow phi with an update edge whose incoming is a
    // duplicate, and rewire that edge to the original value.
    bool seeded = false;
    for (Function *fn : mod->functions()) {
        for (const auto &bb : *fn) {
            for (const auto &inst : *bb) {
                if (inst->opcode() != Opcode::Phi ||
                    !inst->isDuplicate() || seeded)
                    continue;
                for (std::size_t i = 0; i < inst->numOperands(); ++i) {
                    auto *iv = dynamic_cast<Instruction *>(
                        inst->incomingValue(i));
                    if (!iv || !iv->isDuplicate() ||
                        iv->opcode() == Opcode::Phi)
                        continue;
                    // The duplicate sits right behind its original.
                    Instruction *orig = nullptr;
                    for (const auto &cand : *iv->parent()) {
                        if (cand.get() == iv)
                            break;
                        if (!cand->isDuplicate() &&
                            !isCheck(cand->opcode()))
                            orig = cand.get();
                    }
                    if (!orig || orig->opcode() != iv->opcode())
                        continue;
                    inst->setOperand(i, orig);
                    seeded = true;
                    break;
                }
            }
        }
    }
    ASSERT_TRUE(seeded) << "no shadow-phi update edge found to corrupt";
    AuditResult r = auditModule(*mod);
    EXPECT_TRUE(hasViolation(r, AuditViolationKind::MisWiredShadowPhi));
}

TEST(ProtectionAudit, DetectsDroppedOpt2Check)
{
    // Opt-2 cut sites carry a forced replacement check: an
    // un-duplicated chainable instruction feeding a duplicate, whose
    // value check is what Opt 2 relies on. Scan the workloads for one
    // and drop its check.
    bool exercised = false;
    for (const Workload *w : allWorkloads()) {
        HardeningReport rep;
        auto mod = hardened(w->name, HardeningMode::DupValChks, &rep);
        if (rep.opt2Stops == 0)
            continue;
        AuditOptions opts;
        opts.allowUncheckedCuts = rep.uncheckedCutSites;
        ASSERT_TRUE(auditModule(*mod, opts).violations.empty());

        Instruction *check_to_drop = nullptr;
        for (Function *fn : mod->functions()) {
            for (const auto &bb : *fn) {
                for (const auto &inst : *bb) {
                    const Opcode op = inst->opcode();
                    if (op != Opcode::CheckOne &&
                        op != Opcode::CheckTwo &&
                        op != Opcode::CheckRange)
                        continue;
                    auto *target =
                        dynamic_cast<Instruction *>(inst->operand(0));
                    if (!target || target->isDuplicate() ||
                        chainDisposition(*target) !=
                            ChainDisposition::Include)
                        continue;
                    for (const Instruction *u : target->users()) {
                        if (u->isDuplicate()) {
                            check_to_drop = inst.get();
                            break;
                        }
                    }
                    if (check_to_drop)
                        break;
                }
                if (check_to_drop)
                    break;
            }
            if (check_to_drop)
                break;
        }
        if (!check_to_drop)
            continue;
        check_to_drop->dropAllOperands();
        check_to_drop->parent()->erase(check_to_drop);
        AuditResult r = auditModule(*mod, opts);
        EXPECT_TRUE(
            hasViolation(r, AuditViolationKind::MissingCutSiteCheck))
            << w->name;
        exercised = true;
        break;
    }
    ASSERT_TRUE(exercised)
        << "no workload exposed a value-checked Opt-2 cut site";
}

TEST(ProtectionAudit, DetectsNonDominatingCheckOperand)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *a = f->addBlock("a");
    BasicBlock *bb = f->addBlock("b");
    BasicBlock *join = f->addBlock("join");

    b.setInsertPoint(entry);
    auto *cmp = b.createICmp(Predicate::Slt, x, b.constI32(0), "c");
    b.createCondBr(cmp, a, bb);

    b.setInsertPoint(a);
    auto *v = b.createAnd(x, b.constI32(7), "v");
    b.createBr(join);

    b.setInsertPoint(bb);
    b.createBr(join);

    b.setInsertPoint(join);
    // %v does not dominate the join block.
    b.createCheckRange(v, b.constI32(0), b.constI32(7), 0);
    b.createRet(b.constI32(0));
    f->renumber();

    RangeAnalysis ra(*f);
    AuditResult r = auditProtection(*f, ra);
    EXPECT_TRUE(
        hasViolation(r, AuditViolationKind::NonDominatingCheckOperand));
}

TEST(ProtectionAudit, DetectsNonIsomorphicDuplicate)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *orig = b.createAdd(x, b.constI32(1), "o");
    auto *dup = b.createSub(x, b.constI32(1), "d"); // wrong opcode
    dup->setDuplicate(true);
    b.createRet(orig);
    f->renumber();

    RangeAnalysis ra(*f);
    AuditResult r = auditProtection(*f, ra);
    EXPECT_TRUE(
        hasViolation(r, AuditViolationKind::NonIsomorphicDuplicate));
}

TEST(ProtectionAudit, DetectsDuplicateCheckId)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *v = b.createAnd(x, b.constI32(3), "v");
    b.createCheckRange(v, b.constI32(0), b.constI32(3), 7);
    b.createCheckOne(v, b.constI32(0), 7); // id 7 reused
    b.createRet(v);
    f->renumber();

    RangeAnalysis ra(*f);
    AuditResult r = auditProtection(*f, ra);
    EXPECT_TRUE(hasViolation(r, AuditViolationKind::DuplicateCheckId));
}

TEST(ProtectionAudit, ClassifiesVacuousAndFpRiskChecks)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    // and %x, 15 can only ever produce [0, 15] — even from a corrupted
    // %x — so a [0, 15] range check is vacuous.
    auto *v = b.createAnd(x, b.constI32(15), "v");
    b.createCheckRange(v, b.constI32(0), b.constI32(15), 0);
    // A tighter bound is a real check; since the static range of %v
    // ([0, 15]) escapes [0, 7], it is also at false-positive risk.
    b.createCheckRange(v, b.constI32(0), b.constI32(7), 1);
    b.createRet(v);
    f->renumber();

    RangeAnalysis ra(*f);
    AuditResult r = auditProtection(*f, ra);
    ASSERT_TRUE(r.violations.empty()) << r.violations.front().message;
    ASSERT_EQ(r.checks.size(), 2u);
    const CheckReport &vac = r.checks[0].checkId == 0 ? r.checks[0]
                                                      : r.checks[1];
    const CheckReport &real = r.checks[0].checkId == 1 ? r.checks[0]
                                                       : r.checks[1];
    EXPECT_TRUE(vac.vacuous);
    EXPECT_FALSE(vac.fpRisk);
    EXPECT_FALSE(real.vacuous);
    EXPECT_TRUE(real.fpRisk);
    EXPECT_EQ(r.vacuousChecks(), 1u);
    EXPECT_EQ(r.fpRiskChecks(), 1u);
}

TEST(ProtectionAudit, FloatChecksAreNeverVacuous)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::f64());
    Argument *x = f->addArg(Type::f64(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    auto *v = b.createFMul(x, b.constF64(0.5), "v");
    b.createCheckRange(v, b.constF64(-1e300), b.constF64(1e300), 0);
    b.createRet(v);
    f->renumber();

    RangeAnalysis ra(*f);
    AuditResult r = auditProtection(*f, ra);
    ASSERT_EQ(r.checks.size(), 1u);
    EXPECT_FALSE(r.checks[0].isInt);
    EXPECT_FALSE(r.checks[0].vacuous); // NaN can always slip through
}

} // namespace
