/**
 * @file
 * CFG-utility tests: unreachable-block elimination (including phi
 * pruning) and mark-and-sweep dead code elimination (dead chains, dead
 * phi cycles, side-effect barriers).
 */

#include <gtest/gtest.h>

#include "analysis/cfg_utils.hh"
#include "common/test_util.hh"
#include "ir/irbuilder.hh"
#include "ir/verifier.hh"

using namespace softcheck;

namespace
{

TEST(CfgUtils, RemovesUnreachableBlockAndPrunesPhis)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    IRBuilder b(m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *dead = f->addBlock("dead");
    BasicBlock *join = f->addBlock("join");

    b.setInsertPoint(entry);
    b.createBr(join);

    b.setInsertPoint(dead); // no predecessors
    b.createBr(join);

    b.setInsertPoint(join);
    auto *phi = b.createPhi(Type::i32(), "p");
    phi->addIncoming(b.constI32(1), entry);
    phi->addIncoming(b.constI32(2), dead);
    b.createRet(phi);
    f->renumber();

    EXPECT_EQ(removeUnreachableBlocks(*f), 1u);
    EXPECT_EQ(phi->numOperands(), 1u)
        << "phi incoming from the dead block must be pruned";
    EXPECT_EQ(phi->incomingBlock(0), entry);
    EXPECT_TRUE(verifyFunction(*f).empty());
}

TEST(CfgUtils, ReachableGraphUntouched)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *a = f->addBlock("a");
    BasicBlock *c = f->addBlock("b");
    b.setInsertPoint(entry);
    auto *cmp = b.createICmp(Predicate::Slt, x, b.constI32(0), "c");
    b.createCondBr(cmp, a, c);
    b.setInsertPoint(a);
    b.createRet(b.constI32(0));
    b.setInsertPoint(c);
    b.createRet(b.constI32(1));
    EXPECT_EQ(removeUnreachableBlocks(*f), 0u);
    EXPECT_EQ(f->numBlocks(), 3u);
}

TEST(CfgUtils, DceRemovesDeadChainKeepsLive)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    BasicBlock *entry = f->addBlock("entry");
    b.setInsertPoint(entry);
    auto *live = b.createAdd(x, b.constI32(1), "live");
    auto *d1 = b.createMul(x, b.constI32(3), "d1");
    b.createSub(d1, b.constI32(2), "d2"); // dead chain d1 -> d2
    b.createRet(live);

    EXPECT_EQ(eliminateDeadCode(*f), 2u);
    EXPECT_EQ(entry->size(), 2u); // live add + ret
    EXPECT_TRUE(verifyFunction(*f).empty());
}

TEST(CfgUtils, DceCollectsDeadPhiCycle)
{
    // Two phis using only each other: plain use-count DCE never frees
    // them; mark-and-sweep must.
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    IRBuilder b(m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *head = f->addBlock("head");
    BasicBlock *exit = f->addBlock("exit");

    b.setInsertPoint(entry);
    b.createBr(head);

    b.setInsertPoint(head);
    auto *p = b.createPhi(Type::i32(), "p");
    auto *q = b.createPhi(Type::i32(), "q");
    auto *live = b.createPhi(Type::i32(), "live");
    auto *inc = b.createAdd(live, b.constI32(1), "inc");
    auto *cmp = b.createICmp(Predicate::Slt, inc, b.constI32(8), "c");
    b.createCondBr(cmp, head, exit);
    p->addIncoming(b.constI32(0), entry);
    p->addIncoming(q, head);
    q->addIncoming(b.constI32(1), entry);
    q->addIncoming(p, head);
    live->addIncoming(b.constI32(0), entry);
    live->addIncoming(inc, head);

    b.setInsertPoint(exit);
    b.createRet(live);
    f->renumber();

    EXPECT_EQ(eliminateDeadCode(*f), 2u); // p and q
    EXPECT_EQ(head->phis().size(), 1u) << "only the live phi survives";
    EXPECT_TRUE(verifyFunction(*f).empty());
}

TEST(CfgUtils, DceKeepsSideEffectsAndTheirInputs)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *ptr = f->addArg(Type::ptr(), "p");
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    BasicBlock *entry = f->addBlock("entry");
    b.setInsertPoint(entry);
    auto *v = b.createMul(x, x, "v"); // only used by the store
    b.createStore(v, ptr);
    b.createCheckRange(x, b.constI32(0), b.constI32(100), 0);
    b.createRet(b.constI32(0));

    EXPECT_EQ(eliminateDeadCode(*f), 0u)
        << "stores/checks and their operands are live";
    EXPECT_EQ(entry->size(), 4u);
}

} // namespace
