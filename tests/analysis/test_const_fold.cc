#include <gtest/gtest.h>

#include "analysis/const_fold.hh"
#include "common/test_util.hh"
#include "ir/parser.hh"
#include "ir/irbuilder.hh"
#include "ir/printer.hh"

namespace softcheck
{
namespace
{

/** Build fn @f(i32 %x) -> i32 { ret <builder expression> }. */
struct FoldFixture
{
    Module m{"t"};
    Function *f;
    Argument *x;
    IRBuilder b{m};

    FoldFixture()
    {
        f = m.createFunction("f", Type::i32());
        x = f->addArg(Type::i32(), "x");
        b.setInsertPoint(f->addBlock("entry"));
    }

    ConstantInt *ci(int64_t v) { return m.getConstInt(Type::i32(), v); }

    /** Finish with ret @p v, fold, and return the returned value. */
    Value *
    foldReturn(Value *v)
    {
        b.createRet(v);
        foldConstants(*f);
        return f->entry()->back()->operand(0);
    }
};

TEST(ConstFold, FoldsConstantArithmetic)
{
    FoldFixture fx;
    Value *sum = fx.b.createAdd(fx.ci(30), fx.ci(12));
    Value *ret = fx.foldReturn(sum);
    auto *c = dynamic_cast<ConstantInt *>(ret);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->signedValue(), 42);
    EXPECT_EQ(fx.f->entry()->size(), 1u); // only the ret remains
}

TEST(ConstFold, FoldsNestedExpressions)
{
    FoldFixture fx;
    Value *v = fx.b.createMul(fx.b.createAdd(fx.ci(2), fx.ci(3)),
                              fx.b.createSub(fx.ci(10), fx.ci(4)));
    auto *c = dynamic_cast<ConstantInt *>(fx.foldReturn(v));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->signedValue(), 30);
}

TEST(ConstFold, WrapAroundSemantics)
{
    FoldFixture fx;
    Value *v = fx.b.createAdd(fx.ci(2147483647), fx.ci(1));
    auto *c = dynamic_cast<ConstantInt *>(fx.foldReturn(v));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->signedValue(), -2147483648LL);
}

TEST(ConstFold, Identities)
{
    FoldFixture fx;
    Value *v = fx.b.createAdd(fx.x, fx.ci(0));       // x + 0 -> x
    v = fx.b.createMul(v, fx.ci(1));                 // * 1 -> x
    v = fx.b.createOr(v, fx.ci(0));                  // | 0 -> x
    v = fx.b.createShl(v, fx.ci(0));                 // << 0 -> x
    EXPECT_EQ(fx.foldReturn(v), fx.x);
}

TEST(ConstFold, MulByZero)
{
    FoldFixture fx;
    Value *v = fx.b.createMul(fx.x, fx.ci(0));
    auto *c = dynamic_cast<ConstantInt *>(fx.foldReturn(v));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->signedValue(), 0);
}

TEST(ConstFold, AndWithAllOnes)
{
    FoldFixture fx;
    Value *v = fx.b.createAnd(fx.x, fx.ci(-1));
    EXPECT_EQ(fx.foldReturn(v), fx.x);
}

TEST(ConstFold, PreservesDivideByZeroTrap)
{
    FoldFixture fx;
    Value *v = fx.b.createSDiv(fx.ci(10), fx.ci(0));
    Value *ret = fx.foldReturn(v);
    // Not folded: the runtime trap is program behaviour.
    EXPECT_EQ(dynamic_cast<ConstantInt *>(ret), nullptr);
}

TEST(ConstFold, FoldsComparesAndSelects)
{
    FoldFixture fx;
    Value *c = fx.b.createICmp(Predicate::Slt, fx.ci(3), fx.ci(5));
    Value *v = fx.b.createSelect(c, fx.ci(100), fx.ci(200));
    auto *r = dynamic_cast<ConstantInt *>(fx.foldReturn(v));
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->signedValue(), 100);
}

TEST(ConstFold, FoldsFloatMath)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::f64());
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    Value *v = b.createUnaryMath(
        Opcode::Sqrt, b.createFMul(m.getConstFloat(Type::f64(), 2.0),
                                   m.getConstFloat(Type::f64(), 8.0)));
    b.createRet(v);
    foldConstants(*f);
    auto *c = dynamic_cast<ConstantFloat *>(
        f->entry()->back()->operand(0));
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->value(), 4.0);
}

TEST(ConstFold, FoldsCasts)
{
    FoldFixture fx;
    Value *wide = fx.b.createCast(Opcode::SExt, fx.ci(-5), Type::i64());
    Value *back = fx.b.createCast(Opcode::Trunc, wide, Type::i32());
    auto *c = dynamic_cast<ConstantInt *>(fx.foldReturn(back));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->signedValue(), -5);
}

TEST(ConstFold, CompilePipelineAlreadyFolds)
{
    // compileMiniLang runs foldConstants, so a second pass finds
    // nothing and constant sub-expressions are gone from the IR.
    auto mod = compileMiniLang(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + (i * 4 / 2 + (3 - 3)) * 1;
            }
            return s;
        })", "t");
    unsigned folded = 0;
    for (Function *fn : mod->functions())
        folded += foldConstants(*fn);
    EXPECT_EQ(folded, 0u);
}

TEST(ConstFold, SemanticsPreservedOnRealKernel)
{
    // Fold hand-written (unfolded) IR and compare execution results.
    const char *ir = R"(
fn @main(i32 %n) -> i32 {
entry:
    br label %head
head:
    %i = phi i32 [0, %entry], [%i2, %head]
    %s = phi i32 [0, %entry], [%s2, %head]
    %four = add i32 2, 2
    %t = mul i32 %i, %four
    %h = sdiv i32 %t, 2
    %z = sub i32 3, 3
    %e = add i32 %h, %z
    %e1 = mul i32 %e, 1
    %s2 = add i32 %s, %e1
    %i2 = add i32 %i, 1
    %c = icmp slt i32 %i2, %n
    condbr i1 %c, label %head, label %done
done:
    ret i32 %s2
}
)";
    auto m1 = parseIR(ir, "t");
    auto m2 = parseIR(ir, "t");
    unsigned folded = 0;
    for (Function *fn : m2->functions())
        folded += foldConstants(*fn);
    EXPECT_GT(folded, 0u);
    m2->renumberAll();

    for (auto *mp : {m1.get(), m2.get()}) {
        ExecModule em(*mp);
        Memory mem;
        Interpreter interp(em, mem);
        auto r = interp.run(em.functionIndex("main"), {25}, {});
        EXPECT_EQ(r.term, Termination::Ok);
        EXPECT_EQ(static_cast<int64_t>(r.retValue), 600);
    }
}

} // namespace
} // namespace softcheck
