#include <gtest/gtest.h>

#include <sstream>

#include "common/test_util.hh"
#include "profile/profile_data.hh"

namespace softcheck
{
namespace
{

ProfileData
profileOf(const std::vector<double> &samples, bool is_float = false,
          CheckPolicy policy = {})
{
    ValueProfiler prof(1);
    for (double v : samples)
        prof.record(0, v);
    return ProfileData(prof, std::vector<bool>{is_float}, policy);
}

TEST(ProfileData, SingleValueYieldsCheckOne)
{
    std::vector<double> samples(100, 42.0);
    auto pd = profileOf(samples);
    EXPECT_EQ(pd.site(0).shape, CheckShape::One);
    EXPECT_DOUBLE_EQ(pd.site(0).v0, 42.0);
    EXPECT_DOUBLE_EQ(pd.site(0).coverage, 1.0);
}

TEST(ProfileData, TwoValuesYieldCheckTwo)
{
    std::vector<double> samples;
    for (int i = 0; i < 60; ++i)
        samples.push_back(i % 2 ? 5.0 : -3.0);
    auto pd = profileOf(samples);
    EXPECT_EQ(pd.site(0).shape, CheckShape::Two);
    EXPECT_DOUBLE_EQ(pd.site(0).v0, -3.0);
    EXPECT_DOUBLE_EQ(pd.site(0).v1, 5.0);
}

TEST(ProfileData, CompactSpreadYieldsRange)
{
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i)
        samples.push_back(static_cast<double>(i % 100));
    auto pd = profileOf(samples);
    ASSERT_EQ(pd.site(0).shape, CheckShape::Range);
    EXPECT_LE(pd.site(0).v0, 0.0);  // slack below
    EXPECT_GE(pd.site(0).v1, 99.0); // slack above
}

TEST(ProfileData, WideSpreadNotAmenable)
{
    std::vector<double> samples;
    Rng rng(7);
    for (int i = 0; i < 500; ++i)
        samples.push_back(static_cast<double>(
            rng.nextRange(-2'000'000'000LL, 2'000'000'000LL)));
    auto pd = profileOf(samples);
    EXPECT_EQ(pd.site(0).shape, CheckShape::None);
    EXPECT_EQ(pd.numAmenable(), 0u);
}

TEST(ProfileData, TooFewSamplesNotAmenable)
{
    auto pd = profileOf({1.0, 1.0, 1.0}); // below minSamples
    EXPECT_EQ(pd.site(0).shape, CheckShape::None);
}

TEST(ProfileData, RangeSlackIsAtLeastOneForInts)
{
    std::vector<double> samples;
    for (int i = 0; i < 100; ++i)
        samples.push_back(static_cast<double>(50 + i % 3));
    CheckPolicy policy;
    policy.rangeSlack = 0.0;
    auto pd = profileOf(samples, false, policy);
    if (pd.site(0).shape == CheckShape::Range) {
        EXPECT_LE(pd.site(0).v0, 49.0);
        EXPECT_GE(pd.site(0).v1, 53.0);
    }
}

TEST(ProfileData, SerializationRoundTrip)
{
    std::vector<double> samples;
    for (int i = 0; i < 200; ++i)
        samples.push_back(static_cast<double>(i % 50));
    auto pd = profileOf(samples);
    std::stringstream ss;
    pd.save(ss);
    auto loaded = ProfileData::load(ss);
    ASSERT_EQ(loaded.numSites(), pd.numSites());
    EXPECT_EQ(loaded.site(0).shape, pd.site(0).shape);
    EXPECT_DOUBLE_EQ(loaded.site(0).v0, pd.site(0).v0);
    EXPECT_DOUBLE_EQ(loaded.site(0).v1, pd.site(0).v1);
    EXPECT_EQ(loaded.site(0).samples, pd.site(0).samples);
}

TEST(ProfileSites, AssignedToEligibleInstructionsOnly)
{
    auto mod = compileMiniLang(R"(
        fn main(p: ptr<i32>, n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + p[i];
            }
            return s;
        })", "t");
    const unsigned sites = assignProfileSites(*mod);
    EXPECT_GT(sites, 0u);
    for (Function *fn : mod->functions()) {
        for (auto &bb : *fn) {
            for (auto &inst : *bb) {
                if (inst->profileId() >= 0) {
                    EXPECT_TRUE(isProfileEligible(*inst));
                    EXPECT_NE(inst->opcode(), Opcode::Phi);
                    EXPECT_NE(inst->type(), Type::i1());
                }
            }
        }
    }
}

TEST(ProfileSites, EndToEndProfilingRun)
{
    auto mod = compileMiniLang(R"(
        const T: i32[4] = [10, 11, 12, 13];
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + T[i & 3];
            }
            return s;
        })", "t");
    const unsigned sites = assignProfileSites(*mod);
    ExecModule em(*mod);
    ValueProfiler prof(em.numProfileSites());
    Memory mem;
    ExecOptions opts;
    opts.profiler = &prof;
    Interpreter interp(em, mem);
    auto r = interp.run(em.functionIndex("main"), {1000}, opts);
    ASSERT_EQ(r.term, Termination::Ok);

    ProfileData pd(prof, floatSiteFlags(*mod, sites));
    // The table load site (values 10..13) must be amenable.
    bool found_load_site = false;
    for (Function *fn : mod->functions()) {
        for (auto &bb : *fn) {
            for (auto &inst : *bb) {
                if (inst->opcode() == Opcode::Load &&
                    inst->profileId() >= 0) {
                    const auto &s = pd.site(
                        static_cast<unsigned>(inst->profileId()));
                    EXPECT_NE(s.shape, CheckShape::None);
                    EXPECT_GE(s.samples, 1000u);
                    found_load_site = true;
                }
            }
        }
    }
    EXPECT_TRUE(found_load_site);
}

} // namespace
} // namespace softcheck
