#include <gtest/gtest.h>

#include "profile/online_histogram.hh"
#include "support/rng.hh"

namespace softcheck
{
namespace
{

TEST(OnlineHistogram, CountsPreserved)
{
    OnlineHistogram h(5);
    for (int i = 0; i < 1000; ++i)
        h.insert(i % 37);
    EXPECT_EQ(h.totalCount(), 1000u);
    uint64_t bin_total = 0;
    for (const auto &b : h.bins())
        bin_total += b.count;
    EXPECT_EQ(bin_total, 1000u);
}

TEST(OnlineHistogram, NeverExceedsBudget)
{
    OnlineHistogram h(5);
    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        h.insert(static_cast<double>(rng.nextRange(-10000, 10000)));
        EXPECT_LE(h.bins().size(), 5u);
    }
}

TEST(OnlineHistogram, BinsSortedAndDisjoint)
{
    OnlineHistogram h(5);
    Rng rng(2);
    for (int i = 0; i < 300; ++i)
        h.insert(rng.nextDouble() * 1000.0);
    const auto &bins = h.bins();
    for (std::size_t i = 0; i < bins.size(); ++i) {
        EXPECT_LE(bins[i].lb, bins[i].rb);
        if (i + 1 < bins.size())
            EXPECT_LT(bins[i].rb, bins[i + 1].lb);
    }
}

TEST(OnlineHistogram, MinMaxTracked)
{
    OnlineHistogram h(5);
    for (double v : {5.0, -3.0, 12.0, 0.0})
        h.insert(v);
    EXPECT_DOUBLE_EQ(h.minSeen(), -3.0);
    EXPECT_DOUBLE_EQ(h.maxSeen(), 12.0);
}

TEST(OnlineHistogram, ExactValuesTrackedUpToFour)
{
    OnlineHistogram h(5);
    for (int i = 0; i < 10; ++i)
        h.insert(1.0);
    for (int i = 0; i < 5; ++i)
        h.insert(2.0);
    EXPECT_FALSE(h.exactOverflowed());
    ASSERT_EQ(h.exactValues().size(), 2u);
    EXPECT_EQ(h.exactValues().at(1.0), 10u);
    EXPECT_EQ(h.exactValues().at(2.0), 5u);
}

TEST(OnlineHistogram, ExactOverflowAfterTooManyDistinct)
{
    OnlineHistogram h(5);
    for (int i = 0; i < 10; ++i)
        h.insert(static_cast<double>(i));
    EXPECT_TRUE(h.exactOverflowed());
    EXPECT_TRUE(h.exactValues().empty());
}

TEST(OnlineHistogram, SingleValueStaysSingleton)
{
    OnlineHistogram h(5);
    for (int i = 0; i < 100; ++i)
        h.insert(42.0);
    ASSERT_EQ(h.bins().size(), 1u);
    EXPECT_DOUBLE_EQ(h.bins()[0].lb, 42.0);
    EXPECT_DOUBLE_EQ(h.bins()[0].rb, 42.0);
    EXPECT_EQ(h.bins()[0].count, 100u);
}

TEST(OnlineHistogram, MergesSmallestGap)
{
    OnlineHistogram h(2);
    h.insert(0.0);
    h.insert(100.0);
    h.insert(1.0); // closest to 0 -> merged with it
    const auto &bins = h.bins();
    ASSERT_EQ(bins.size(), 2u);
    EXPECT_DOUBLE_EQ(bins[0].lb, 0.0);
    EXPECT_DOUBLE_EQ(bins[0].rb, 1.0);
    EXPECT_EQ(bins[0].count, 2u);
    EXPECT_DOUBLE_EQ(bins[1].lb, 100.0);
}

// ---- Algorithm 2 ----------------------------------------------------

TEST(FrequentRange, PicksDominantCluster)
{
    OnlineHistogram h(5);
    // Dense cluster at [0, 10], outliers far away.
    for (int i = 0; i < 900; ++i)
        h.insert(static_cast<double>(i % 11));
    for (int i = 0; i < 10; ++i)
        h.insert(1.0e6 + i * 1e5);
    const FrequentRange fr = extractFrequentRange(h, 1000.0);
    EXPECT_LE(fr.lo, 0.0);
    EXPECT_GE(fr.hi, 10.0);
    EXPECT_LT(fr.hi, 1.0e5); // outliers excluded
    EXPECT_GE(fr.mass, 900u);
}

TEST(FrequentRange, ThresholdLimitsWidth)
{
    OnlineHistogram h(5);
    for (int i = 0; i < 100; ++i) {
        h.insert(0.0);
        h.insert(500.0);
        h.insert(1000.0);
    }
    // Threshold below the gap: only the seed bin is returned.
    const FrequentRange fr = extractFrequentRange(h, 100.0);
    EXPECT_LE(fr.hi - fr.lo, 100.0);
}

TEST(FrequentRange, WideThresholdCoversEverything)
{
    OnlineHistogram h(5);
    Rng rng(5);
    for (int i = 0; i < 400; ++i)
        h.insert(static_cast<double>(rng.nextRange(0, 1000)));
    const FrequentRange fr = extractFrequentRange(h, 1.0e9);
    EXPECT_EQ(fr.mass, h.totalCount());
}

TEST(FrequentRange, EmptyHistogram)
{
    OnlineHistogram h(5);
    const FrequentRange fr = extractFrequentRange(h, 100.0);
    EXPECT_EQ(fr.mass, 0u);
}

TEST(FrequentRange, MassNeverExceedsTotal)
{
    Rng rng(6);
    for (int trial = 0; trial < 20; ++trial) {
        OnlineHistogram h(5);
        const int n = 50 + static_cast<int>(rng.nextBelow(200));
        for (int i = 0; i < n; ++i)
            h.insert(static_cast<double>(rng.nextRange(-500, 500)));
        const FrequentRange fr = extractFrequentRange(
            h, static_cast<double>(rng.nextBelow(2000)));
        EXPECT_LE(fr.mass, h.totalCount());
        EXPECT_LE(fr.lo, fr.hi);
    }
}

} // namespace
} // namespace softcheck
