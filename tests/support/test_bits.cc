#include <gtest/gtest.h>

#include "support/bits.hh"

namespace softcheck
{
namespace
{

TEST(Bits, LowBitMask)
{
    EXPECT_EQ(lowBitMask(0), 0u);
    EXPECT_EQ(lowBitMask(1), 1u);
    EXPECT_EQ(lowBitMask(8), 0xFFu);
    EXPECT_EQ(lowBitMask(32), 0xFFFFFFFFu);
    EXPECT_EQ(lowBitMask(64), ~0ULL);
}

TEST(Bits, TruncBits)
{
    EXPECT_EQ(truncBits(0x1FF, 8), 0xFFu);
    EXPECT_EQ(truncBits(0x100, 8), 0u);
    EXPECT_EQ(truncBits(~0ULL, 32), 0xFFFFFFFFu);
    EXPECT_EQ(truncBits(5, 64), 5u);
}

TEST(Bits, SignExtendPositive)
{
    EXPECT_EQ(signExtend(0x7F, 8), 127);
    EXPECT_EQ(signExtend(0x7FFFFFFF, 32), 2147483647);
    EXPECT_EQ(signExtend(0, 8), 0);
}

TEST(Bits, SignExtendNegative)
{
    EXPECT_EQ(signExtend(0xFF, 8), -1);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0xFFFFFFFF, 32), -1);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
}

TEST(Bits, SignExtend64IsIdentity)
{
    EXPECT_EQ(signExtend(0x8000000000000000ULL, 64),
              std::numeric_limits<int64_t>::min());
    EXPECT_EQ(signExtend(42, 64), 42);
}

TEST(Bits, FlipBitInvolution)
{
    for (unsigned bit = 0; bit < 64; ++bit) {
        const uint64_t v = 0xDEADBEEFCAFEF00DULL;
        EXPECT_NE(flipBit(v, bit), v);
        EXPECT_EQ(flipBit(flipBit(v, bit), bit), v);
    }
}

TEST(Bits, TestBit)
{
    EXPECT_TRUE(testBit(0b100, 2));
    EXPECT_FALSE(testBit(0b100, 1));
    EXPECT_TRUE(testBit(1ULL << 63, 63));
}

class TruncSignRoundTrip : public ::testing::TestWithParam<unsigned>
{};

TEST_P(TruncSignRoundTrip, SignExtendOfTruncPreservesLowBits)
{
    const unsigned width = GetParam();
    for (uint64_t v :
         {0ULL, 1ULL, 0x7FULL, 0x80ULL, 0xFFULL, 0xDEADBEEFULL,
          0x8000000000000000ULL, ~0ULL}) {
        const uint64_t t = truncBits(v, width);
        const int64_t s = signExtend(t, width);
        EXPECT_EQ(truncBits(static_cast<uint64_t>(s), width), t);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, TruncSignRoundTrip,
                         ::testing::Values(1u, 8u, 16u, 32u, 64u));

} // namespace
} // namespace softcheck
