#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/task_pool.hh"

namespace softcheck
{
namespace
{

TEST(TaskPool, RunsEverySubmittedTask)
{
    TaskPool pool(4);
    std::atomic<unsigned> ran{0};
    std::vector<TaskPool::TaskId> ids;
    for (unsigned i = 0; i < 500; ++i)
        ids.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    pool.waitAll();
    EXPECT_EQ(ran.load(), 500u);
    for (const TaskPool::TaskId id : ids)
        pool.wait(id); // already done; must not block or throw
}

TEST(TaskPool, ZeroThreadsDefaultsToAtLeastOneWorker)
{
    TaskPool pool(0);
    EXPECT_GE(pool.threadCount(), 1u);
    bool ran = false;
    pool.wait(pool.submit([&ran] { ran = true; }));
    EXPECT_TRUE(ran);
}

TEST(TaskPool, SingleWorkerRunsIndependentTasksInSubmissionOrder)
{
    // One worker pops its own deque front-first, so the one-thread
    // schedule is the deterministic sequential reference the suite's
    // bit-identity tests compare against.
    TaskPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 32; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.waitAll();
    std::vector<int> expect(32);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

TEST(TaskPool, DagDependenciesAreRespected)
{
    // Diamond: a -> {b, c} -> d, plus a long dependency chain. Record
    // completion stamps and assert every edge ordered, at a thread
    // count large enough to surface misordering.
    TaskPool pool(4);
    std::atomic<unsigned> clock{0};
    std::array<unsigned, 4> stamp{};
    const auto a = pool.submit(
        [&] { stamp[0] = clock.fetch_add(1); });
    const auto b = pool.submit(
        [&] { stamp[1] = clock.fetch_add(1); }, {a});
    const auto c = pool.submit(
        [&] { stamp[2] = clock.fetch_add(1); }, {a});
    const auto d = pool.submit(
        [&] { stamp[3] = clock.fetch_add(1); }, {b, c});
    pool.wait(d);
    EXPECT_LT(stamp[0], stamp[1]);
    EXPECT_LT(stamp[0], stamp[2]);
    EXPECT_LT(stamp[1], stamp[3]);
    EXPECT_LT(stamp[2], stamp[3]);

    std::vector<unsigned> chain_order;
    TaskPool::TaskId prev = 0;
    for (unsigned i = 0; i < 64; ++i) {
        std::vector<TaskPool::TaskId> deps;
        if (i > 0)
            deps.push_back(prev);
        prev = pool.submit([&chain_order, i] { chain_order.push_back(i); },
                           deps);
    }
    pool.wait(prev);
    ASSERT_EQ(chain_order.size(), 64u);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(chain_order[i], i);
}

TEST(TaskPool, DependencyOnAlreadyFinishedTaskRunsImmediately)
{
    TaskPool pool(2);
    const auto a = pool.submit([] {});
    pool.wait(a);
    bool ran = false;
    pool.wait(pool.submit([&ran] { ran = true; }, {a}));
    EXPECT_TRUE(ran);
}

TEST(TaskPool, IdleWorkersStealFromABlockedWorkersDeque)
{
    // Pin worker 0 with a blocker that refuses to return until every
    // short task has run. External submissions round-robin across both
    // deques, so the shorts placed on worker 0's deque can only run if
    // worker 1 steals them — without stealing this test deadlocks (and
    // times out) instead of passing.
    TaskPool pool(2);
    std::mutex mu;
    std::condition_variable cv;
    unsigned short_done = 0;
    constexpr unsigned kShorts = 16;

    pool.submit([&] {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return short_done == kShorts; });
    });
    for (unsigned i = 0; i < kShorts; ++i) {
        pool.submit([&] {
            std::lock_guard lock(mu);
            ++short_done;
            cv.notify_all();
        });
    }
    pool.waitAll();
    EXPECT_EQ(short_done, kShorts);
}

TEST(TaskPool, WaitRethrowsTaskException)
{
    TaskPool pool(2);
    const auto id = pool.submit(
        [] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(id), std::runtime_error);
}

TEST(TaskPool, FailedDependencySkipsDependentsAndCascades)
{
    TaskPool pool(2);
    std::atomic<bool> dependent_ran{false};
    const auto bad = pool.submit(
        [] { throw std::runtime_error("root failure"); });
    const auto skipped = pool.submit(
        [&dependent_ran] { dependent_ran = true; }, {bad});
    const auto transitive = pool.submit(
        [&dependent_ran] { dependent_ran = true; }, {skipped});

    // Both dependents complete (wait returns) but are skipped, and
    // rethrow the root failure.
    EXPECT_THROW(pool.wait(skipped), std::runtime_error);
    EXPECT_THROW(pool.wait(transitive), std::runtime_error);
    EXPECT_FALSE(dependent_ran.load());

    // An unrelated task still runs normally.
    bool ok_ran = false;
    pool.wait(pool.submit([&ok_ran] { ok_ran = true; }));
    EXPECT_TRUE(ok_ran);
}

TEST(TaskPool, WaitAllRethrowsLowestIdFailure)
{
    // Two independent failures: whichever worker loses the race,
    // waitAll must surface the one submitted first.
    for (int round = 0; round < 10; ++round) {
        TaskPool pool_round(4);
        pool_round.submit([] {});
        pool_round.submit([] { throw std::runtime_error("first"); });
        pool_round.submit([] { throw std::logic_error("second"); });
        try {
            pool_round.waitAll();
            FAIL() << "waitAll did not rethrow";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "first");
        } catch (const std::logic_error &) {
            FAIL() << "waitAll surfaced the higher-id failure";
        }
    }
}

TEST(TaskPool, TasksSubmittedFromWorkersRunToCompletion)
{
    // Fan-out from inside tasks: each level-1 task submits level-2
    // tasks onto its own worker's deque; all must drain before the
    // destructor joins.
    TaskPool pool(3);
    std::atomic<unsigned> ran{0};
    for (unsigned i = 0; i < 8; ++i) {
        pool.submit([&pool, &ran] {
            for (unsigned j = 0; j < 4; ++j)
                pool.submit([&ran] { ran.fetch_add(1); });
        });
    }
    // A parent's pending count only drops after it has submitted its
    // children, so one waitAll covers the whole nested fan-out.
    pool.waitAll();
    EXPECT_EQ(ran.load(), 32u);
}

} // namespace
} // namespace softcheck
