#include <gtest/gtest.h>

#include "support/stats.hh"

namespace softcheck
{
namespace
{

TEST(Stats, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, SampleStddev)
{
    EXPECT_DOUBLE_EQ(sampleStddev({}), 0.0);
    EXPECT_DOUBLE_EQ(sampleStddev({4.0}), 0.0);
    EXPECT_NEAR(sampleStddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                2.138, 1e-3);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Stats, MarginOfErrorMatchesPaper)
{
    // Paper Sec. IV-C: 1000 trials -> ~3.1% at 95% confidence
    // (worst-case p = 0.5).
    EXPECT_NEAR(100.0 * marginOfError(1000, 0.5, 0.95), 3.1, 0.05);
}

TEST(Stats, MarginOfErrorShrinksWithTrials)
{
    EXPECT_GT(marginOfError(100), marginOfError(1000));
    EXPECT_GT(marginOfError(1000), marginOfError(10000));
}

TEST(Stats, MarginOfErrorConfidenceOrdering)
{
    EXPECT_LT(marginOfError(500, 0.5, 0.90),
              marginOfError(500, 0.5, 0.95));
    EXPECT_LT(marginOfError(500, 0.5, 0.95),
              marginOfError(500, 0.5, 0.99));
}

TEST(Stats, MarginOfErrorSkewedProportion)
{
    EXPECT_LT(marginOfError(1000, 0.05), marginOfError(1000, 0.5));
}

} // namespace
} // namespace softcheck
