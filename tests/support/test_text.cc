#include <gtest/gtest.h>

#include "support/error.hh"
#include "support/text.hh"

namespace softcheck
{
namespace
{

TEST(Text, Join)
{
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"a"}, ","), "a");
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Text, SplitChar)
{
    auto parts = splitChar("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Text, SplitPreservesEmptyTail)
{
    auto parts = splitChar("x,", ',');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[1], "");
}

TEST(Text, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("\t\nx"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("no-op"), "no-op");
}

TEST(Text, Strformat)
{
    EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strformat("%5.2f", 3.14159), " 3.14");
}

TEST(Text, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(Error, FatalThrows)
{
    EXPECT_THROW(scFatal("boom ", 42), FatalError);
    try {
        scFatal("code ", 7);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("code 7"),
                  std::string::npos);
    }
}

} // namespace
} // namespace softcheck
