#include <gtest/gtest.h>

#include <map>
#include <set>

#include "support/rng.hh"

namespace softcheck
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInBound)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 2000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(Rng, GaussianMeanAndSpread)
{
    Rng rng(17);
    double sum = 0, sq = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextGaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.1);
    EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(21);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformityRoughChiSquare)
{
    Rng rng(23);
    std::map<uint64_t, int> buckets;
    const int n = 8000;
    for (int i = 0; i < n; ++i)
        buckets[rng.nextBelow(8)]++;
    for (auto &[k, v] : buckets)
        EXPECT_NEAR(v, n / 8, n / 40); // within 20%
}

} // namespace
} // namespace softcheck
