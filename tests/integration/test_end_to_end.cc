#include <gtest/gtest.h>

#include "analysis/dominance_verify.hh"
#include "common/test_util.hh"
#include "core/pipeline.hh"
#include "fault/campaign.hh"
#include "ir/verifier.hh"
#include "workloads/workload.hh"

namespace softcheck
{
namespace
{

/**
 * The library-level correctness property, per benchmark: hardening (any
 * mode) must not change fault-free outputs, and the transformed IR must
 * verify structurally and for SSA dominance.
 */
class WorkloadHardening
    : public ::testing::TestWithParam<const Workload *>
{
  protected:
    /** Golden (retValue, signal) of the unmodified program. */
    std::pair<uint64_t, std::vector<double>>
    goldenRun(const WorkloadRunSpec &spec)
    {
        auto mod = compileMiniLang(wl().source, wl().name);
        ExecModule em(*mod);
        auto run = prepareRun(spec);
        Interpreter interp(em, *run.mem);
        auto r = interp.run(em.functionIndex(wl().entry), run.args, {});
        EXPECT_EQ(r.term, Termination::Ok);
        return {r.retValue, extractSignal(wl(), spec, run)};
    }

    const Workload &wl() { return *GetParam(); }
};

TEST_P(WorkloadHardening, DupValChksPreservesOutput)
{
    const auto spec = wl().makeInput(false);
    const auto golden = goldenRun(spec);

    // Profile on the train input.
    auto mod = compileMiniLang(wl().source, wl().name);
    const unsigned sites = assignProfileSites(*mod);
    ProfileData pd;
    {
        ExecModule em(*mod);
        auto train = wl().makeInput(true);
        auto run = prepareRun(train);
        ValueProfiler prof(em.numProfileSites());
        ExecOptions opts;
        opts.profiler = &prof;
        Interpreter interp(em, *run.mem);
        auto r = interp.run(em.functionIndex(wl().entry), run.args,
                            opts);
        ASSERT_EQ(r.term, Termination::Ok);
        pd = ProfileData(prof, floatSiteFlags(*mod, sites));
    }

    HardeningOptions hopts;
    hopts.mode = HardeningMode::DupValChks;
    auto report = hardenModule(*mod, hopts, &pd);
    EXPECT_GT(report.stateVars, 0u) << wl().name;
    EXPECT_TRUE(verifyModule(*mod).empty()) << wl().name;
    for (Function *fn : mod->functions())
        EXPECT_TRUE(verifyDominance(*fn).empty()) << wl().name;

    // Fault-free hardened run: checks may fire as false positives, so
    // record instead of halting; output must be identical.
    ExecModule em(*mod);
    auto run = prepareRun(spec);
    std::vector<uint64_t> fails(em.numCheckIds(), 0);
    ExecOptions opts;
    opts.checkMode = CheckMode::Record;
    opts.checkFailCounts = &fails;
    Interpreter interp(em, *run.mem);
    auto r = interp.run(em.functionIndex(wl().entry), run.args, opts);
    ASSERT_EQ(r.term, Termination::Ok) << wl().name;
    EXPECT_EQ(r.retValue, golden.first) << wl().name;
    EXPECT_EQ(extractSignal(wl(), spec, run), golden.second)
        << wl().name;
}

TEST_P(WorkloadHardening, FullDupPreservesOutput)
{
    const auto spec = wl().makeInput(false);
    const auto golden = goldenRun(spec);

    auto mod = compileMiniLang(wl().source, wl().name);
    HardeningOptions hopts;
    hopts.mode = HardeningMode::FullDup;
    hardenModule(*mod, hopts);

    ExecModule em(*mod);
    auto run = prepareRun(spec);
    Interpreter interp(em, *run.mem);
    auto r = interp.run(em.functionIndex(wl().entry), run.args, {});
    ASSERT_EQ(r.term, Termination::Ok) << wl().name;
    EXPECT_EQ(r.retValue, golden.first) << wl().name;
    EXPECT_EQ(extractSignal(wl(), spec, run), golden.second)
        << wl().name;
}

TEST_P(WorkloadHardening, HardeningAddsOverheadNotExplosion)
{
    auto orig = characterizeOnly([&] {
        CampaignConfig cfg;
        cfg.workload = wl().name;
        cfg.mode = HardeningMode::DupValChks;
        return cfg;
    }());
    EXPECT_GT(orig.overhead(), 0.0) << wl().name;
    EXPECT_LT(orig.overhead(), 1.0) << wl().name; // < 100%
}

INSTANTIATE_TEST_SUITE_P(
    All13, WorkloadHardening, ::testing::ValuesIn(allWorkloads()),
    [](const auto &info) { return info.param->name; });

TEST(EndToEnd, DetectionImprovesOnCrcKernel)
{
    // Statistical sanity on a kernel dominated by state variables: the
    // hardened version must convert a visible fraction of outcomes
    // into SWDetects.
    CampaignConfig cfg;
    cfg.workload = "g721dec";
    cfg.trials = 150;
    cfg.seed = 31337;
    cfg.mode = HardeningMode::Original;
    auto orig = runCampaign(cfg);
    cfg.mode = HardeningMode::DupValChks;
    auto hard = runCampaign(cfg);

    EXPECT_EQ(orig.counts[static_cast<unsigned>(Outcome::SWDetect)],
              0u);
    EXPECT_GT(hard.counts[static_cast<unsigned>(Outcome::SWDetect)],
              0u);
    EXPECT_GE(orig.sdcPct(), hard.sdcPct() - 2.0);
}

TEST(EndToEnd, CheckIdsStableAcrossRecompilation)
{
    // Campaigns recompile the module; profile ids must line up across
    // compilations of the same source (deterministic assignment).
    const Workload &w = getWorkload("tiff2bw");
    auto m1 = compileMiniLang(w.source, w.name);
    auto m2 = compileMiniLang(w.source, w.name);
    const unsigned s1 = assignProfileSites(*m1);
    const unsigned s2 = assignProfileSites(*m2);
    EXPECT_EQ(s1, s2);
    auto it1 = m1->functions().begin();
    auto it2 = m2->functions().begin();
    for (; it1 != m1->functions().end(); ++it1, ++it2) {
        auto b1 = (*it1)->begin(), b2 = (*it2)->begin();
        for (; b1 != (*it1)->end(); ++b1, ++b2) {
            auto i1 = (*b1)->begin(), i2 = (*b2)->begin();
            for (; i1 != (*b1)->end(); ++i1, ++i2) {
                EXPECT_EQ((*i1)->opcode(), (*i2)->opcode());
                EXPECT_EQ((*i1)->profileId(), (*i2)->profileId());
            }
        }
    }
}

} // namespace
} // namespace softcheck
