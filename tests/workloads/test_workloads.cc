#include <gtest/gtest.h>

#include "frontend/compile.hh"
#include "workloads/workload.hh"

namespace softcheck
{
namespace
{

TEST(Workloads, ThirteenRegistered)
{
    EXPECT_EQ(allWorkloads().size(), 13u);
}

TEST(Workloads, TableOneCategories)
{
    std::map<std::string, int> by_category;
    for (const Workload *w : allWorkloads())
        by_category[w->category]++;
    // Paper Table I: at least two from each of the five categories.
    EXPECT_GE(by_category["image"], 2);
    EXPECT_GE(by_category["vision"], 2);
    EXPECT_GE(by_category["audio"], 2);
    EXPECT_GE(by_category["video"], 2);
    EXPECT_GE(by_category["ml"], 2);
}

TEST(Workloads, LookupByName)
{
    EXPECT_EQ(getWorkload("jpegdec").name, "jpegdec");
    EXPECT_THROW(getWorkload("not-a-benchmark"), FatalError);
}

TEST(Workloads, TrainAndTestInputsDiffer)
{
    for (const Workload *w : allWorkloads()) {
        auto train = w->makeInput(true);
        auto test = w->makeInput(false);
        bool differ = train.args.size() != test.args.size();
        for (std::size_t i = 0;
             !differ && i < train.args.size(); ++i) {
            if (train.args[i].data != test.args[i].data ||
                train.args[i].scalar != test.args[i].scalar)
                differ = true;
        }
        EXPECT_TRUE(differ) << w->name;
    }
}

/**
 * Per-benchmark end-to-end sanity, parameterized over all 13: compile,
 * run both inputs, confirm deterministic outputs and fidelity-signal
 * self-consistency.
 */
class WorkloadRuns : public ::testing::TestWithParam<const Workload *>
{};

TEST_P(WorkloadRuns, CompilesAndRunsBothInputs)
{
    const Workload &w = *GetParam();
    auto mod = compileMiniLang(w.source, w.name);
    ExecModule em(*mod);
    for (bool train : {true, false}) {
        auto spec = w.makeInput(train);
        auto run = prepareRun(spec);
        Interpreter interp(em, *run.mem);
        auto r = interp.run(em.functionIndex(w.entry), run.args, {});
        ASSERT_EQ(r.term, Termination::Ok)
            << w.name << (train ? " train" : " test");
        EXPECT_GT(r.dynInstrs, 1000u) << w.name;
        EXPECT_LT(r.dynInstrs, 5'000'000u) << w.name;
        auto signal = extractSignal(w, spec, run);
        EXPECT_FALSE(signal.empty()) << w.name;
    }
}

TEST_P(WorkloadRuns, DeterministicAcrossRuns)
{
    const Workload &w = *GetParam();
    auto mod = compileMiniLang(w.source, w.name);
    ExecModule em(*mod);
    auto spec = w.makeInput(false);

    auto once = [&]() {
        auto run = prepareRun(spec);
        Interpreter interp(em, *run.mem);
        auto r = interp.run(em.functionIndex(w.entry), run.args, {});
        EXPECT_EQ(r.term, Termination::Ok);
        return std::make_pair(r.retValue, extractSignal(w, spec, run));
    };
    auto a = once();
    auto b = once();
    EXPECT_EQ(a.first, b.first) << w.name;
    EXPECT_EQ(a.second, b.second) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    All13, WorkloadRuns, ::testing::ValuesIn(allWorkloads()),
    [](const auto &info) { return info.param->name; });

TEST(Workloads, Mp3decCrcCleanOnGoldenStream)
{
    // The MiniLang CRC must agree with the reference codec's CRC: the
    // decoder returns the number of CRC mismatches.
    const Workload &w = getWorkload("mp3dec");
    auto mod = compileMiniLang(w.source, w.name);
    ExecModule em(*mod);
    auto spec = w.makeInput(false);
    auto run = prepareRun(spec);
    Interpreter interp(em, *run.mem);
    auto r = interp.run(em.functionIndex(w.entry), run.args, {});
    ASSERT_EQ(r.term, Termination::Ok);
    EXPECT_EQ(r.retValue, 0u);
}

TEST(Workloads, PreparedBuffersMatchSpec)
{
    const Workload &w = getWorkload("tiff2bw");
    auto spec = w.makeInput(false);
    auto run = prepareRun(spec);
    ASSERT_EQ(run.args.size(), spec.args.size());
    for (std::size_t i = 0; i < spec.args.size(); ++i) {
        if (spec.args[i].kind == WorkloadArg::Kind::Buffer) {
            EXPECT_NE(run.bufferAddr[i], 0u);
            uint64_t v = 0;
            EXPECT_TRUE(run.mem->read(run.bufferAddr[i],
                                      spec.args[i].elem.storeSize(),
                                      v));
            EXPECT_EQ(v, spec.args[i].data[0]);
        } else {
            EXPECT_EQ(run.args[i], spec.args[i].scalar);
        }
    }
}

} // namespace
} // namespace softcheck
