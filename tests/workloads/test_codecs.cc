#include <gtest/gtest.h>

#include <cmath>

#include "fidelity/fidelity.hh"
#include "workloads/codecs.hh"
#include "workloads/inputs.hh"

namespace softcheck
{
namespace
{

TEST(JpegCodec, RoundTripQuality)
{
    auto img = makeImage(32, 32, 77);
    auto stream = codecs::jpegEncode(img, 32, 32);
    EXPECT_LE(stream.size(), codecs::jpegMaxStream(32, 32));
    auto decoded = codecs::jpegDecode(stream, 32, 32);
    ASSERT_EQ(decoded.size(), img.size());
    std::vector<double> a(img.begin(), img.end());
    std::vector<double> b(decoded.begin(), decoded.end());
    EXPECT_GT(psnr(a, b), 30.0); // lossy but good quality
}

TEST(JpegCodec, StreamStartsWithBlockCount)
{
    auto img = makeImage(16, 24, 5);
    auto stream = codecs::jpegEncode(img, 16, 24);
    EXPECT_EQ(stream[0], (16 / 8) * (24 / 8));
}

TEST(AdpcmCodec, RoundTripQuality)
{
    auto audio = makeAudio(2048, 99);
    auto codes = codecs::adpcmEncode(audio);
    ASSERT_EQ(codes.size(), audio.size());
    for (int32_t c : codes) {
        EXPECT_GE(c, 0);
        EXPECT_LE(c, 15);
    }
    auto decoded = codecs::adpcmDecode(codes);
    std::vector<double> a(audio.begin(), audio.end());
    std::vector<double> b(decoded.begin(), decoded.end());
    // ADPCM tracks the waveform: decent segmental SNR.
    EXPECT_GT(segmentalSnr(a, b), 15.0);
}

TEST(SubbandCodec, RoundTripQuality)
{
    auto audio = makeAudio(1024, 123);
    auto stream = codecs::subbandEncode(audio);
    EXPECT_EQ(stream.size(), (1024 / 32) * 33u);
    auto decoded = codecs::subbandDecode(stream, 1024);
    std::vector<double> a(audio.begin(), audio.end());
    std::vector<double> b(decoded.begin(), decoded.end());
    EXPECT_GT(psnr(a, b, 32768.0), 35.0);
}

TEST(SubbandCodec, CrcDetectsCorruption)
{
    auto audio = makeAudio(64, 7);
    auto stream = codecs::subbandEncode(audio);
    const int32_t good = codecs::subbandCrc(stream.data(), 32);
    EXPECT_EQ(good, stream[32]);
    auto corrupted = stream;
    corrupted[5] ^= 0x40;
    EXPECT_NE(codecs::subbandCrc(corrupted.data(), 32), corrupted[32]);
}

TEST(VideoCodec, RoundTripQuality)
{
    auto video = makeVideo(3, 32, 24, 55);
    auto stream = codecs::videoEncode(video, 32, 24, 3);
    auto decoded = codecs::videoDecode(stream, 32, 24, 3);
    ASSERT_EQ(decoded.size(), video.size());
    std::vector<double> a(video.begin(), video.end());
    std::vector<double> b(decoded.begin(), decoded.end());
    EXPECT_GT(psnr(a, b), 28.0);
}

TEST(VideoCodec, MotionVectorsBounded)
{
    auto video = makeVideo(2, 16, 16, 3);
    auto stream = codecs::videoEncode(video, 16, 16, 2);
    const unsigned blocks = 4;
    // After 4 intra blocks x 64 coeffs, P-frame blocks follow.
    std::size_t pos = blocks * 64;
    for (unsigned b = 0; b < blocks; ++b) {
        EXPECT_LE(std::abs(stream[pos]), 2);
        EXPECT_LE(std::abs(stream[pos + 1]), 2);
        pos += 66;
    }
}

TEST(Inputs, Deterministic)
{
    EXPECT_EQ(makeImage(16, 16, 9), makeImage(16, 16, 9));
    EXPECT_NE(makeImage(16, 16, 9), makeImage(16, 16, 10));
    EXPECT_EQ(makeAudio(128, 3), makeAudio(128, 3));
}

TEST(Inputs, RangesRespected)
{
    for (int32_t v : makeImage(32, 32, 4)) {
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 255);
    }
    for (int32_t v : makeAudio(512, 4)) {
        EXPECT_GE(v, -32768);
        EXPECT_LE(v, 32767);
    }
}

TEST(Inputs, LabeledDataIsMostlySeparable)
{
    std::vector<int32_t> labels;
    auto data = makeLabeledData(200, 8, 42, labels);
    ASSERT_EQ(labels.size(), 200u);
    ASSERT_EQ(data.size(), 200u * 8);
    int pos = 0;
    for (int32_t l : labels) {
        EXPECT_TRUE(l == 1 || l == -1);
        if (l == 1)
            ++pos;
    }
    // Not degenerate.
    EXPECT_GT(pos, 40);
    EXPECT_LT(pos, 160);
}

TEST(Inputs, ClusterDataHasStructure)
{
    auto data = makeClusterData(100, 4, 5, 11);
    EXPECT_EQ(data.size(), 400u);
    // Points of the same cluster index (i % k) are close.
    double intra = 0;
    for (unsigned d = 0; d < 4; ++d) {
        const double diff = data[0 * 4 + d] - data[5 * 4 + d];
        intra += diff * diff;
    }
    EXPECT_LT(std::sqrt(intra), 50.0);
}

} // namespace
} // namespace softcheck
