#include <gtest/gtest.h>

#include "frontend/compile.hh"
#include "workloads/workload.hh"

namespace softcheck
{
namespace
{

/**
 * Fidelity must respond to output corruption in the right direction:
 * tiny perturbations stay acceptable, gross corruption does not.
 * Parameterized over all 13 benchmarks.
 */
class FidelityDirection
    : public ::testing::TestWithParam<const Workload *>
{};

TEST_P(FidelityDirection, GoldenOutputIsAcceptableToItself)
{
    const Workload &w = *GetParam();
    auto mod = compileMiniLang(w.source, w.name);
    ExecModule em(*mod);
    auto spec = w.makeInput(false);
    auto run = prepareRun(spec);
    Interpreter interp(em, *run.mem);
    auto r = interp.run(em.functionIndex(w.entry), run.args, {});
    ASSERT_EQ(r.term, Termination::Ok);
    auto signal = extractSignal(w, spec, run);
    const double score = fidelityScore(w.fidelity, signal, signal);
    EXPECT_TRUE(fidelityAcceptable(w.fidelity, score, w.threshold))
        << w.name;
}

TEST_P(FidelityDirection, GrossCorruptionIsUnacceptable)
{
    const Workload &w = *GetParam();
    auto mod = compileMiniLang(w.source, w.name);
    ExecModule em(*mod);
    auto spec = w.makeInput(false);
    auto run = prepareRun(spec);
    Interpreter interp(em, *run.mem);
    auto r = interp.run(em.functionIndex(w.entry), run.args, {});
    ASSERT_EQ(r.term, Termination::Ok);
    auto golden = extractSignal(w, spec, run);

    // Corrupt the raw output buffers massively, then re-extract.
    for (std::size_t a = 0; a < spec.args.size(); ++a) {
        const WorkloadArg &arg = spec.args[a];
        if (arg.kind != WorkloadArg::Kind::Buffer || !arg.isOutput)
            continue;
        const unsigned esz = arg.elem.storeSize();
        for (uint64_t i = 0; i < arg.count; ++i) {
            uint64_t v = 0;
            run.mem->read(run.bufferAddr[a] + i * esz, esz, v);
            run.mem->write(run.bufferAddr[a] + i * esz, esz,
                           v ^ lowBitMask(arg.elem.bitWidth()));
        }
    }
    auto corrupted = extractSignal(w, spec, run);
    const double score = fidelityScore(w.fidelity, golden, corrupted);
    EXPECT_FALSE(fidelityAcceptable(w.fidelity, score, w.threshold))
        << w.name << " score=" << score;
}

TEST_P(FidelityDirection, SinglePixelCorruptionIsAcceptable)
{
    const Workload &w = *GetParam();
    // Only meaningful for element-wise outputs. Encoder outputs are
    // bitstreams: one flipped code perturbs every later sample through
    // the decoder's prediction state, which is exactly why the paper
    // treats encoders' stream-position state as critical.
    if (w.name.ends_with("enc"))
        GTEST_SKIP() << "stream output; not element-wise";
    auto mod = compileMiniLang(w.source, w.name);
    ExecModule em(*mod);
    auto spec = w.makeInput(false);
    auto run = prepareRun(spec);
    Interpreter interp(em, *run.mem);
    auto r = interp.run(em.functionIndex(w.entry), run.args, {});
    ASSERT_EQ(r.term, Termination::Ok);
    auto golden = extractSignal(w, spec, run);

    // Flip a low bit of ONE output element.
    for (std::size_t a = 0; a < spec.args.size(); ++a) {
        const WorkloadArg &arg = spec.args[a];
        if (arg.kind != WorkloadArg::Kind::Buffer || !arg.isOutput)
            continue;
        const unsigned esz = arg.elem.storeSize();
        const uint64_t idx = arg.count / 2;
        uint64_t v = 0;
        run.mem->read(run.bufferAddr[a] + idx * esz, esz, v);
        run.mem->write(run.bufferAddr[a] + idx * esz, esz, v ^ 1);
        break;
    }
    auto perturbed = extractSignal(w, spec, run);
    const double score = fidelityScore(w.fidelity, golden, perturbed);
    EXPECT_TRUE(fidelityAcceptable(w.fidelity, score, w.threshold))
        << w.name << " score=" << score;
}

INSTANTIATE_TEST_SUITE_P(
    All13, FidelityDirection, ::testing::ValuesIn(allWorkloads()),
    [](const auto &info) { return info.param->name; });

} // namespace
} // namespace softcheck
