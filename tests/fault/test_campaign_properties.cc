#include <gtest/gtest.h>

#include "fault/campaign.hh"

namespace softcheck
{
namespace
{

TEST(CampaignProperties, ThreadCountDoesNotChangeResults)
{
    // Trial RNGs are indexed by trial number, so the outcome counts
    // must be identical regardless of parallelism.
    CampaignConfig cfg;
    cfg.workload = "tiff2bw";
    cfg.mode = HardeningMode::DupOnly;
    cfg.trials = 80;
    cfg.seed = 555;

    cfg.threads = 1;
    auto serial = runCampaign(cfg);
    cfg.threads = 8;
    auto parallel = runCampaign(cfg);
    EXPECT_EQ(serial.counts, parallel.counts);
    EXPECT_EQ(serial.usdcLargeChange, parallel.usdcLargeChange);
}

TEST(CampaignProperties, GoldenRunsAgreeAcrossModesOnBaseline)
{
    // The baseline (unhardened) cycle count is a property of the
    // benchmark + input, independent of the configuration measured.
    CampaignConfig cfg;
    cfg.workload = "g721dec";
    cfg.trials = 0;
    cfg.mode = HardeningMode::DupOnly;
    auto a = runCampaign(cfg);
    cfg.mode = HardeningMode::FullDup;
    auto b = runCampaign(cfg);
    EXPECT_EQ(a.baselineCycles, b.baselineCycles);
    EXPECT_GT(b.goldenCycles, a.goldenCycles);
}

TEST(CampaignProperties, TimeoutFactorBoundsRuns)
{
    // Even with a hostile timeout factor the campaign terminates and
    // classifies everything.
    CampaignConfig cfg;
    cfg.workload = "svm";
    cfg.mode = HardeningMode::Original;
    cfg.trials = 40;
    cfg.timeoutFactor = 1.5;
    auto r = runCampaign(cfg);
    uint64_t total = 0;
    for (uint64_t c : r.counts)
        total += c;
    EXPECT_EQ(total, 40u);
}

TEST(CampaignProperties, ReportMatchesStaticStats)
{
    CampaignConfig cfg;
    cfg.workload = "jpegdec";
    cfg.mode = HardeningMode::DupValChks;
    cfg.trials = 0;
    auto r = runCampaign(cfg);
    // Check ids allocated == checks present in the transformed IR.
    EXPECT_EQ(r.report.numCheckIds, r.report.stats.allChecks());
    EXPECT_EQ(r.totalCheckCount, r.report.numCheckIds);
    // Value checks counted by the pass match the static census.
    EXPECT_EQ(r.report.valueChecks, r.report.stats.valueChecks());
    EXPECT_EQ(r.report.eqChecks, r.report.stats.checkEq);
}

TEST(CampaignProperties, OverheadScalesWithCheckDensity)
{
    // Disabling Opt 1 inserts strictly more checks and must not reduce
    // the measured overhead.
    CampaignConfig cfg;
    cfg.workload = "tiff2bw";
    cfg.mode = HardeningMode::DupValChks;
    cfg.trials = 0;
    auto with_opt1 = runCampaign(cfg);
    cfg.enableOpt1 = false;
    auto without_opt1 = runCampaign(cfg);
    EXPECT_GE(without_opt1.report.valueChecks,
              with_opt1.report.valueChecks);
    EXPECT_GE(without_opt1.overhead(), with_opt1.overhead() - 1e-9);
}

} // namespace
} // namespace softcheck
