#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "fault/campaign.hh"
#include "support/rng.hh"

namespace softcheck
{
namespace
{

/**
 * Trial RNG streams are derived with a splitmix64 finalizer; adjacent
 * trial indices must not produce correlated streams (the old linear
 * schedule seed*k1 + t*k2 + 1 leaked adjacent-trial structure into the
 * drawn fault sites).
 */

TEST(TrialSeeds, MixedSeedsAreDistinctAndWellSpread)
{
    std::set<uint64_t> seen;
    for (unsigned t = 0; t < 4096; ++t)
        seen.insert(trialSeed(0x5eed, t));
    EXPECT_EQ(seen.size(), 4096u);

    // Adjacent mixed seeds should differ in roughly half their bits,
    // not just the low ones.
    unsigned min_flips = 64;
    for (unsigned t = 0; t + 1 < 256; ++t) {
        const int flips = std::popcount(trialSeed(0x5eed, t) ^
                                        trialSeed(0x5eed, t + 1));
        min_flips = std::min<unsigned>(min_flips,
                                       static_cast<unsigned>(flips));
    }
    EXPECT_GE(min_flips, 10u);
}

TEST(TrialSeeds, AdjacentTrialsDrawDistinctFaultSites)
{
    // First draw of each trial's stream is its fault_at position; for
    // a million-instruction run, adjacent trials (and in fact all 512
    // sampled trials) must land on distinct sites.
    const uint64_t golden = 1'000'000;
    std::set<uint64_t> sites;
    uint64_t prev = ~0ULL;
    for (unsigned t = 0; t < 512; ++t) {
        Rng rng(trialSeed(0xC0FFEE, t));
        const uint64_t fault_at = rng.nextBelow(golden);
        EXPECT_NE(fault_at, prev) << "trial " << t;
        sites.insert(fault_at);
        prev = fault_at;
    }
    EXPECT_GE(sites.size(), 510u);
}

TEST(TrialSeeds, DifferentCampaignSeedsDecorrelate)
{
    unsigned equal = 0;
    for (unsigned t = 0; t < 256; ++t) {
        Rng a(trialSeed(1, t));
        Rng b(trialSeed(2, t));
        if (a.nextBelow(1'000'000) == b.nextBelow(1'000'000))
            ++equal;
    }
    EXPECT_LE(equal, 2u);
}

} // namespace
} // namespace softcheck
