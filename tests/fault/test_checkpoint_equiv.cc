#include <gtest/gtest.h>

#include "fault/campaign.hh"

namespace softcheck
{
namespace
{

/**
 * The correctness bar for trial fast-forwarding: campaign results must
 * be bit-identical whether trials replay from dynamic instruction 0
 * (checkpoints = 0) or resume from snapshots (any K), at any thread
 * count. Covers 2 workloads x all hardening modes.
 */

struct EquivCase
{
    const char *workload;
    HardeningMode mode;
};

class CheckpointEquiv : public ::testing::TestWithParam<EquivCase>
{};

CampaignConfig
baseConfig(const EquivCase &c)
{
    CampaignConfig cfg;
    cfg.workload = c.workload;
    cfg.mode = c.mode;
    cfg.trials = 48;
    cfg.seed = 0xAB;
    cfg.threads = 2;
    return cfg;
}

void
expectSameCampaign(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.usdcLargeChange, b.usdcLargeChange);
    EXPECT_EQ(a.usdcSmallChange, b.usdcSmallChange);
    EXPECT_EQ(a.goldenDynInstrs, b.goldenDynInstrs);
    EXPECT_EQ(a.goldenCycles, b.goldenCycles);
    EXPECT_EQ(a.calibrationCheckFails, b.calibrationCheckFails);
    EXPECT_EQ(a.disabledCheckCount, b.disabledCheckCount);
}

TEST_P(CheckpointEquiv, OutcomesIdenticalAcrossK)
{
    CampaignConfig cfg = baseConfig(GetParam());
    cfg.checkpoints = 0;
    const auto scratch = runCampaign(cfg);

    uint64_t total = 0;
    for (uint64_t c : scratch.counts)
        total += c;
    ASSERT_EQ(total, cfg.trials);

    for (const unsigned k : {4u, 8u, 32u, 256u}) {
        cfg.checkpoints = k;
        const auto ck = runCampaign(cfg);
        SCOPED_TRACE(testing::Message() << "K=" << k);
        expectSameCampaign(scratch, ck);
    }
}

/** COW snapshots must stay cheaper than the deep copies they replaced,
 * and more checkpoints must not change a single outcome. */
TEST_P(CheckpointEquiv, CowSnapshotFootprintShrinks)
{
    CampaignConfig cfg = baseConfig(GetParam());
    cfg.checkpoints = 32;
    const auto r = runCampaign(cfg);
    ASSERT_GT(r.snapshotCount, 0u);
    ASSERT_GT(r.snapshotBytes, 0u);
    // Shared pages are counted once across the K snapshots, so the
    // resident footprint must undercut K independent deep copies.
    EXPECT_LT(r.snapshotBytes, r.snapshotBytesFullCopy);
}

TEST_P(CheckpointEquiv, OutcomesIdenticalAcrossThreads)
{
    CampaignConfig cfg = baseConfig(GetParam());
    cfg.checkpoints = 32;
    cfg.threads = 1;
    const auto serial = runCampaign(cfg);
    cfg.threads = 4;
    const auto parallel = runCampaign(cfg);
    expectSameCampaign(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    TwoWorkloadsAllModes, CheckpointEquiv,
    ::testing::Values(
        EquivCase{"tiff2bw", HardeningMode::Original},
        EquivCase{"tiff2bw", HardeningMode::DupOnly},
        EquivCase{"tiff2bw", HardeningMode::DupValChks},
        EquivCase{"tiff2bw", HardeningMode::FullDup},
        EquivCase{"g721enc", HardeningMode::Original},
        EquivCase{"g721enc", HardeningMode::DupOnly},
        EquivCase{"g721enc", HardeningMode::DupValChks},
        EquivCase{"g721enc", HardeningMode::FullDup}),
    [](const auto &info) {
        const char *mode = "";
        switch (info.param.mode) {
          case HardeningMode::Original: mode = "Original"; break;
          case HardeningMode::DupOnly: mode = "DupOnly"; break;
          case HardeningMode::DupValChks: mode = "DupValChks"; break;
          case HardeningMode::FullDup: mode = "FullDup"; break;
        }
        return std::string(info.param.workload) + "_" + mode;
    });

} // namespace
} // namespace softcheck
