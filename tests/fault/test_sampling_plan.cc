/**
 * @file
 * Stratified-sampling equivalence and plan-invariant tests.
 *
 * The stratified planner's claims are stronger than statistical
 * agreement: every static resolution is exactness-preserving, so a
 * stratified campaign's outcome counts must be BIT-IDENTICAL to the
 * blind campaign's at the same seed — checked here across workloads,
 * hardening modes, seeds, execution tiers and thread counts. The
 * margin of error must simultaneously shrink (that is the point of
 * the stratification), and the SOFTCHECK_VALIDATE_STATIC_MASKED hook
 * must be able to re-execute the statically resolved trials and see
 * Masked dynamically.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "fault/campaign_internal.hh"
#include "fault/suite.hh"
#include "support/task_pool.hh"

namespace softcheck
{
namespace
{

void
expectSameCounts(const CampaignResult &blind,
                 const CampaignResult &strat)
{
    EXPECT_EQ(blind.counts, strat.counts);
    EXPECT_EQ(blind.usdcLargeChange, strat.usdcLargeChange);
    EXPECT_EQ(blind.usdcSmallChange, strat.usdcSmallChange);
    EXPECT_EQ(blind.goldenDynInstrs, strat.goldenDynInstrs);
    EXPECT_EQ(blind.goldenCycles, strat.goldenCycles);
    EXPECT_EQ(blind.calibrationCheckFails,
              strat.calibrationCheckFails);
}

void
expectStratifiedAccountingSane(const CampaignResult &r)
{
    EXPECT_GE(r.staticMaskedWeight, 0.0);
    EXPECT_LE(r.staticMaskedWeight, 1.0);
    EXPECT_GE(r.trialsStaticallyResolved, r.trialsWeightResolved);
    EXPECT_LE(r.trialsStaticallyResolved + r.trialsClassMembers,
              r.totalTrials());
    EXPECT_GE(r.staticallyResolvedFraction(), 0.0);
    EXPECT_LE(r.staticallyResolvedFraction(), 1.0);
    EXPECT_GE(r.effectiveSampleSize(),
              static_cast<double>(r.totalTrials() -
                                  r.trialsWeightResolved));
    for (unsigned o = 0; o < kNumOutcomes; ++o) {
        const auto oc = static_cast<Outcome>(o);
        EXPECT_GE(r.marginOfError95(oc), 0.0);
    }
}

/** Four workloads x all four hardening modes x two seeds: stratified
 * counts are bit-identical to blind, the accounting is sane, and the
 * worst-case margin of error never exceeds the blind one. */
TEST(SamplingPlan, SuiteGridBitIdenticalToBlind)
{
    SuiteConfig sc;
    sc.workloads = {"tiff2bw", "g721enc", "kmeans", "svm"};
    sc.modes = {HardeningMode::Original, HardeningMode::DupOnly,
                HardeningMode::DupValChks, HardeningMode::FullDup};
    sc.seeds = {0x5eed, 0xBEEF};
    sc.base.trials = 60;

    sc.base.sampling = SamplingPlan::Blind;
    const SuiteResult blind = runCampaignSuite(sc);

    sc.base.sampling = SamplingPlan::Stratified;
    const SuiteResult strat = runCampaignSuite(sc);

    ASSERT_EQ(strat.cells.size(), blind.cells.size());
    uint64_t total_skipped = 0;
    for (std::size_t i = 0; i < blind.cells.size(); ++i) {
        SCOPED_TRACE(testing::Message()
                     << "cell " << i << " ("
                     << blind.cells[i].config.workload << ", "
                     << hardeningModeName(blind.cells[i].config.mode)
                     << ", seed " << blind.cells[i].config.seed
                     << ")");
        expectSameCounts(blind.cells[i], strat.cells[i]);
        expectStratifiedAccountingSane(strat.cells[i]);
        // Blind campaigns carry no stratified accounting.
        EXPECT_EQ(blind.cells[i].staticMaskedWeight, 0.0);
        EXPECT_EQ(blind.cells[i].trialsStaticallyResolved, 0u);
        // The worst-case margin ratio (stratified / blind) is
        // (1-W)*sqrt(n/n_a), which is <= 1 iff n_a >= n*(1-W)^2, i.e.
        // the realized W-stratum count X_w <= n*(2W - W^2). At the
        // expected X_w ~ W*n the ratio is sqrt(1-W) < 1; only when
        // X_w lands far ABOVE roughly twice its expectation can the
        // shrunken active sample outweigh the (1-W) scaling — honest
        // variance reporting, not a bug, so only assert shrinkage
        // inside the guaranteed region.
        const CampaignResult &s = strat.cells[i];
        const double W = s.staticMaskedWeight;
        const double n = static_cast<double>(s.totalTrials());
        if (static_cast<double>(s.trialsWeightResolved) <=
            n * (2.0 * W - W * W))
            EXPECT_LE(s.marginOfError95WorstCase(),
                      blind.cells[i].marginOfError95WorstCase() +
                          1e-12);
        total_skipped += strat.cells[i].trialsStaticallyResolved +
                         strat.cells[i].trialsClassMembers;
    }
    // The grid as a whole must actually prune something, or the mode
    // is pointless.
    EXPECT_GT(total_skipped, 0u);
}

/** One stratified campaign across every execution tier and thread
 * count: counts AND stratified accounting are bit-identical (the plan
 * is built on the interpreter from trial-indexed RNG streams, so
 * neither tier nor scheduling can perturb it). */
TEST(SamplingPlan, BitIdenticalAcrossTiersAndThreads)
{
    CampaignConfig cfg;
    cfg.workload = "g721enc";
    cfg.mode = HardeningMode::DupValChks;
    cfg.trials = 120;
    cfg.sampling = SamplingPlan::Stratified;
    cfg.tier = ExecTier::Interp;
    cfg.threads = 1;
    const CampaignResult ref = runCampaign(cfg);
    expectStratifiedAccountingSane(ref);

    for (const ExecTier tier :
         {ExecTier::Interp, ExecTier::Threaded, ExecTier::Lockstep}) {
        for (const unsigned threads : {1u, 2u, 4u}) {
            SCOPED_TRACE(testing::Message()
                         << execTierName(tier) << " x " << threads
                         << " threads");
            cfg.tier = tier;
            cfg.threads = threads;
            const CampaignResult got = runCampaign(cfg);
            EXPECT_EQ(got.counts, ref.counts);
            EXPECT_EQ(got.usdcLargeChange, ref.usdcLargeChange);
            EXPECT_EQ(got.usdcSmallChange, ref.usdcSmallChange);
            EXPECT_EQ(got.staticMaskedWeight, ref.staticMaskedWeight);
            EXPECT_EQ(got.trialsWeightResolved,
                      ref.trialsWeightResolved);
            EXPECT_EQ(got.trialsStaticallyResolved,
                      ref.trialsStaticallyResolved);
            EXPECT_EQ(got.trialsClassMembers, ref.trialsClassMembers);
            EXPECT_EQ(got.faultClasses, ref.faultClasses);
        }
    }
}

/** SOFTCHECK_VALIDATE_STATIC_MASKED: every non-RingEmpty statically
 * resolved trial is re-executed and scAssert'd to classify Masked;
 * the validation reruns must not perturb any accounting. */
TEST(SamplingPlan, DynamicValidationOfStaticResolutions)
{
    CampaignConfig cfg;
    cfg.workload = "tiff2bw";
    cfg.mode = HardeningMode::FullDup;
    cfg.trials = 80;
    cfg.sampling = SamplingPlan::Stratified;
    const CampaignResult plain = runCampaign(cfg);

    ASSERT_EQ(setenv("SOFTCHECK_VALIDATE_STATIC_MASKED", "1", 1), 0);
    const CampaignResult validated = runCampaign(cfg);
    ASSERT_EQ(unsetenv("SOFTCHECK_VALIDATE_STATIC_MASKED"), 0);

    EXPECT_EQ(validated.counts, plain.counts);
    EXPECT_EQ(validated.usdcLargeChange, plain.usdcLargeChange);
    EXPECT_EQ(validated.usdcSmallChange, plain.usdcSmallChange);
    EXPECT_EQ(validated.ffReplayInstrs, plain.ffReplayInstrs);
    EXPECT_EQ(validated.trialsStaticallyResolved,
              plain.trialsStaticallyResolved);
}

/** Structural invariants of the plan itself, via the internal API. */
TEST(SamplingPlan, PlanInvariants)
{
    using namespace campaign_detail;
    CampaignConfig cfg;
    cfg.workload = "g721enc";
    cfg.mode = HardeningMode::DupOnly;
    cfg.trials = 200;
    cfg.sampling = SamplingPlan::Stratified;
    const CellCharacterization cell =
        characterizeCell(cfg, nullptr, nullptr);
    ASSERT_NE(cell.faultSpace, nullptr);
    const StratifiedPlan plan = buildStratifiedPlan(cell, cfg);

    ASSERT_EQ(plan.trials.size(), cfg.trials);
    EXPECT_GE(plan.staticMaskedWeight, 0.0);
    EXPECT_LE(plan.staticMaskedWeight, 1.0);

    uint64_t resolved = 0, weight_resolved = 0, members = 0;
    std::vector<uint32_t> class_sizes(plan.classes.size(), 0);
    std::vector<uint32_t> class_min(plan.classes.size(), ~0u);
    for (std::size_t t = 0; t < plan.trials.size(); ++t) {
        const PlannedTrialInfo &pi = plan.trials[t];
        switch (pi.kind) {
          case TrialKind::Execute:
            EXPECT_EQ(pi.why, StaticResolution::None);
            EXPECT_EQ(pi.classId, ~0u);
            break;
          case TrialKind::Resolved:
            EXPECT_NE(pi.why, StaticResolution::None);
            ++resolved;
            if (pi.why == StaticResolution::RingEmpty ||
                pi.why == StaticResolution::MaskedBit)
                ++weight_resolved;
            break;
          case TrialKind::ClassRep:
          case TrialKind::ClassMember: {
            ASSERT_LT(pi.classId, plan.classes.size());
            ++class_sizes[pi.classId];
            class_min[pi.classId] = std::min(
                class_min[pi.classId], static_cast<uint32_t>(t));
            if (pi.kind == TrialKind::ClassMember)
                ++members;
            break;
          }
        }
    }
    EXPECT_EQ(resolved, plan.staticResolvedTrials);
    EXPECT_EQ(weight_resolved, plan.weightResolvedTrials);
    EXPECT_EQ(members, plan.memberTrials);
    for (std::size_t c = 0; c < plan.classes.size(); ++c) {
        SCOPED_TRACE(testing::Message() << "class " << c);
        EXPECT_GE(plan.classes[c].size, 2u);
        EXPECT_EQ(plan.classes[c].size, class_sizes[c]);
        // The representative is the lowest member trial, and it is
        // marked ClassRep.
        EXPECT_EQ(plan.classes[c].repTrial, class_min[c]);
        EXPECT_EQ(plan.trials[plan.classes[c].repTrial].kind,
                  TrialKind::ClassRep);
    }

    // The plan is a pure function of (characterization, seed):
    // rebuilding it gives the same plan.
    const StratifiedPlan again = buildStratifiedPlan(cell, cfg);
    EXPECT_EQ(again.staticMaskedWeight, plan.staticMaskedWeight);
    EXPECT_EQ(again.staticResolvedTrials, plan.staticResolvedTrials);
    EXPECT_EQ(again.memberTrials, plan.memberTrials);
    EXPECT_EQ(again.classes.size(), plan.classes.size());
}

/** Equivalence classes need two unresolved trials to collide on a
 * (first read, slot, bit) key, which at the default budgets over a
 * ~74k-instruction stream essentially never happens — so pin the
 * class machinery at a budget where collisions are guaranteed by
 * construction on the smallest workload. Plan building only replays
 * the golden run once, so this stays cheap even at 16000 trials. */
TEST(SamplingPlan, ClassesFormAtHighBudget)
{
    using namespace campaign_detail;
    CampaignConfig cfg;
    cfg.workload = "tiff2bw";
    cfg.mode = HardeningMode::Original;
    cfg.trials = 16000;
    cfg.sampling = SamplingPlan::Stratified;
    const CellCharacterization cell =
        characterizeCell(cfg, nullptr, nullptr);
    const StratifiedPlan plan = buildStratifiedPlan(cell, cfg);

    ASSERT_GE(plan.classes.size(), 1u);
    EXPECT_GE(plan.memberTrials, plan.classes.size());
    for (const FaultClass &c : plan.classes) {
        ASSERT_LT(c.repTrial, plan.trials.size());
        EXPECT_EQ(plan.trials[c.repTrial].kind, TrialKind::ClassRep);
        // A representative still executes at its own trial index, so
        // it must not also be statically resolved.
        EXPECT_EQ(plan.trials[c.repTrial].why, StaticResolution::None);
        EXPECT_GE(c.size, 2u);
    }
}

} // namespace
} // namespace softcheck
