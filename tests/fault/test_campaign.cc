#include <gtest/gtest.h>

#include "fault/campaign.hh"

namespace softcheck
{
namespace
{

CampaignConfig
smallConfig(const std::string &name, HardeningMode mode,
            unsigned trials = 60)
{
    CampaignConfig cfg;
    cfg.workload = name;
    cfg.mode = mode;
    cfg.trials = trials;
    cfg.seed = 7;
    cfg.threads = 4;
    return cfg;
}

TEST(Campaign, CharacterizeOriginal)
{
    auto r = characterizeOnly(smallConfig("tiff2bw",
                                          HardeningMode::Original));
    EXPECT_GT(r.goldenDynInstrs, 10'000u);
    EXPECT_GT(r.goldenCycles, 0u);
    EXPECT_EQ(r.baselineCycles, r.goldenCycles); // original == baseline
    EXPECT_NEAR(r.overhead(), 0.0, 1e-12);
    EXPECT_EQ(r.totalCheckCount, 0u);
}

TEST(Campaign, OverheadOrderingAcrossModes)
{
    const auto orig =
        characterizeOnly(smallConfig("jpegdec", HardeningMode::Original));
    const auto dup =
        characterizeOnly(smallConfig("jpegdec", HardeningMode::DupOnly));
    const auto dup_chk = characterizeOnly(
        smallConfig("jpegdec", HardeningMode::DupValChks));
    const auto full =
        characterizeOnly(smallConfig("jpegdec", HardeningMode::FullDup));

    EXPECT_NEAR(orig.overhead(), 0.0, 1e-12);
    EXPECT_GT(dup.overhead(), 0.0);
    EXPECT_GT(dup_chk.overhead(), dup.overhead());
    EXPECT_GT(full.overhead(), dup_chk.overhead());
}

TEST(Campaign, TrialCountsSumToTrials)
{
    auto r = runCampaign(smallConfig("svm", HardeningMode::Original));
    uint64_t total = 0;
    for (uint64_t c : r.counts)
        total += c;
    EXPECT_EQ(total, 60u);
}

TEST(Campaign, DeterministicForFixedSeed)
{
    auto a = runCampaign(smallConfig("g721enc", HardeningMode::DupOnly));
    auto b = runCampaign(smallConfig("g721enc", HardeningMode::DupOnly));
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.goldenCycles, b.goldenCycles);
    EXPECT_EQ(a.usdcLargeChange, b.usdcLargeChange);
}

TEST(Campaign, SeedChangesOutcomeMix)
{
    auto a = runCampaign(smallConfig("g721enc", HardeningMode::Original));
    auto cfg = smallConfig("g721enc", HardeningMode::Original);
    cfg.seed = 999;
    auto b = runCampaign(cfg);
    EXPECT_NE(a.counts, b.counts); // overwhelmingly likely
}

TEST(Campaign, OriginalHasNoSwDetects)
{
    auto r = runCampaign(smallConfig("segm", HardeningMode::Original));
    EXPECT_EQ(r.counts[static_cast<unsigned>(Outcome::SWDetect)], 0u);
    EXPECT_EQ(r.totalCheckCount, 0u);
}

TEST(Campaign, HardenedModesProduceSwDetects)
{
    auto r = runCampaign(
        smallConfig("jpegdec", HardeningMode::DupValChks, 100));
    EXPECT_GT(r.totalCheckCount, 0u);
    EXPECT_GT(r.counts[static_cast<unsigned>(Outcome::SWDetect)], 0u);
}

TEST(Campaign, UsdcAttributionConsistent)
{
    auto r = runCampaign(
        smallConfig("g721dec", HardeningMode::Original, 120));
    EXPECT_EQ(r.usdcLargeChange + r.usdcSmallChange,
              r.counts[static_cast<unsigned>(Outcome::USDC)]);
}

TEST(Campaign, PercentagesSumToHundred)
{
    auto r = runCampaign(smallConfig("kmeans", HardeningMode::DupOnly));
    double total = 0;
    for (unsigned o = 0; o < kNumOutcomes; ++o)
        total += r.pct(static_cast<Outcome>(o));
    EXPECT_NEAR(total, 100.0, 1e-9);
    EXPECT_LE(r.coveragePct(), 100.0 + 1e-9);
}

TEST(Campaign, MarginOfErrorMatchesPaperAt1000)
{
    CampaignResult r;
    r.counts[0] = 1000;
    EXPECT_NEAR(r.marginOfError95WorstCase(), 3.1, 0.05);
    // The per-outcome margin evaluates at the observed proportion: a
    // unanimous outcome has zero sampling error, and a 50/50 split
    // recovers the worst-case bound.
    EXPECT_NEAR(r.marginOfError95(Outcome::Masked), 0.0, 1e-12);
    r.counts[0] = 500;
    r.counts[static_cast<unsigned>(Outcome::USDC)] = 500;
    EXPECT_NEAR(r.marginOfError95(Outcome::Masked),
                r.marginOfError95WorstCase(), 1e-12);
    // An 80/20 split is strictly tighter than worst case, and
    // complementary outcomes share one margin (p vs 1-p symmetry).
    r.counts[0] = 800;
    r.counts[static_cast<unsigned>(Outcome::USDC)] = 200;
    EXPECT_LT(r.marginOfError95(Outcome::USDC),
              r.marginOfError95WorstCase());
    EXPECT_NEAR(r.marginOfError95(Outcome::USDC),
                r.marginOfError95(Outcome::Masked), 1e-12);
}

TEST(Campaign, CrossValidationSwapRuns)
{
    auto cfg = smallConfig("kmeans", HardeningMode::DupValChks, 40);
    cfg.swapTrainTest = true;
    auto r = runCampaign(cfg);
    uint64_t total = 0;
    for (uint64_t c : r.counts)
        total += c;
    EXPECT_EQ(total, 40u);
    EXPECT_GT(r.goldenDynInstrs, 0u);
}

TEST(Campaign, FalsePositiveCalibrationDisablesFiringChecks)
{
    // With train != test inputs some value checks typically fire
    // during calibration; they must be disabled and counted.
    auto r = characterizeOnly(
        smallConfig("jpegdec", HardeningMode::DupValChks));
    EXPECT_EQ(r.disabledCheckCount == 0,
              r.calibrationCheckFails == 0);
    EXPECT_LE(r.disabledCheckCount, r.totalCheckCount);
    if (r.calibrationCheckFails > 0) {
        EXPECT_GT(r.instrsPerFalsePositive(), 1.0);
    }
}

TEST(Campaign, ReportStringContainsKeyFields)
{
    auto r = runCampaign(smallConfig("svm", HardeningMode::DupOnly, 30));
    const std::string s = r.str();
    EXPECT_NE(s.find("svm"), std::string::npos);
    EXPECT_NE(s.find("Dup only"), std::string::npos);
    EXPECT_NE(s.find("USDC"), std::string::npos);
    EXPECT_NE(s.find("overhead"), std::string::npos);
}

} // namespace
} // namespace softcheck
