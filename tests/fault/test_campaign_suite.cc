#include <gtest/gtest.h>

#include "fault/suite.hh"

namespace softcheck
{
namespace
{

/**
 * The correctness bar for the suite engine: every cell of
 * runCampaignSuite must be bit-identical to a standalone runCampaign
 * with the same per-cell config — sharing the compile, profile,
 * baseline, and pristine memory image across cells must be invisible
 * in the results.
 */

SuiteConfig
smallSuite(unsigned threads)
{
    SuiteConfig s;
    s.workloads = {"tiff2bw", "g721enc"};
    s.modes = {HardeningMode::Original, HardeningMode::DupOnly,
               HardeningMode::DupValChks};
    s.base.trials = 48;
    s.base.seed = 0xAB;
    s.base.threads = threads;
    return s;
}

void
expectSameCell(const CampaignResult &suite_cell,
               const CampaignResult &single)
{
    EXPECT_EQ(suite_cell.counts, single.counts);
    EXPECT_EQ(suite_cell.usdcLargeChange, single.usdcLargeChange);
    EXPECT_EQ(suite_cell.usdcSmallChange, single.usdcSmallChange);
    EXPECT_EQ(suite_cell.goldenDynInstrs, single.goldenDynInstrs);
    EXPECT_EQ(suite_cell.goldenCycles, single.goldenCycles);
    EXPECT_EQ(suite_cell.baselineCycles, single.baselineCycles);
    EXPECT_EQ(suite_cell.calibrationCheckFails,
              single.calibrationCheckFails);
    EXPECT_EQ(suite_cell.disabledCheckCount, single.disabledCheckCount);
    EXPECT_EQ(suite_cell.totalCheckCount, single.totalCheckCount);
    EXPECT_EQ(suite_cell.snapshotCount, single.snapshotCount);
    EXPECT_EQ(suite_cell.snapshotBytes, single.snapshotBytes);
    EXPECT_EQ(suite_cell.report.valueChecks, single.report.valueChecks);
    EXPECT_EQ(suite_cell.report.eqChecks, single.report.eqChecks);
}

class SuiteEquiv : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SuiteEquiv, CellsMatchStandaloneRuns)
{
    const SuiteConfig sc = smallSuite(GetParam());
    const SuiteResult suite = runCampaignSuite(sc);
    ASSERT_EQ(suite.cells.size(),
              sc.workloads.size() * sc.modes.size());

    for (std::size_t wi = 0; wi < sc.workloads.size(); ++wi) {
        for (std::size_t mi = 0; mi < sc.modes.size(); ++mi) {
            CampaignConfig cfg = sc.base;
            cfg.workload = sc.workloads[wi];
            cfg.mode = sc.modes[mi];
            SCOPED_TRACE(testing::Message()
                         << cfg.workload << " mode "
                         << hardeningModeName(cfg.mode) << " threads "
                         << GetParam());
            const CampaignResult single = runCampaign(cfg);
            expectSameCell(suite.cell(wi, mi), single);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AcrossThreadCounts, SuiteEquiv,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto &info) {
                             return "Threads" +
                                    std::to_string(info.param);
                         });

TEST(Suite, BitIdenticalAcrossSchedulerThreadCounts)
{
    // The overlapped scheduler must be invisible in the results: a
    // multi-seed grid run at 2/4/8 pool threads has to reproduce the
    // one-thread (sequential-schedule) suite bit for bit, including
    // the snapshot-page accounting, which dedups across concurrently
    // characterized cells.
    SuiteConfig sc = smallSuite(1);
    sc.seeds = {0xAB, 0x5eed, 0xF00D};
    const SuiteResult ref = runCampaignSuite(sc);

    for (const unsigned threads : {2u, 4u, 8u}) {
        SuiteConfig par = sc;
        par.base.threads = threads;
        const SuiteResult got = runCampaignSuite(par);
        ASSERT_EQ(got.cells.size(), ref.cells.size());
        for (std::size_t i = 0; i < ref.cells.size(); ++i) {
            SCOPED_TRACE(testing::Message()
                         << "threads " << threads << " cell " << i
                         << " (" << ref.cells[i].config.workload
                         << ", "
                         << hardeningModeName(ref.cells[i].config.mode)
                         << ", seed " << ref.cells[i].config.seed
                         << ")");
            EXPECT_EQ(got.cells[i].config.seed,
                      ref.cells[i].config.seed);
            expectSameCell(got.cells[i], ref.cells[i]);
            EXPECT_EQ(got.cells[i].snapshotBytesFullCopy,
                      ref.cells[i].snapshotBytesFullCopy);
        }
        ASSERT_EQ(got.workloadStats.size(), ref.workloadStats.size());
        for (std::size_t w = 0; w < ref.workloadStats.size(); ++w) {
            SCOPED_TRACE(ref.workloadStats[w].workload);
            EXPECT_EQ(got.workloadStats[w].suiteSnapshotBytes,
                      ref.workloadStats[w].suiteSnapshotBytes);
            EXPECT_EQ(got.workloadStats[w].cellSnapshotBytesSum,
                      ref.workloadStats[w].cellSnapshotBytesSum);
        }
    }
}

TEST(Suite, SeedVariantsMatchStandaloneRuns)
{
    // Seed variants fan out of one shared characterization per
    // (workload, mode); each must still be bit-identical to a fully
    // standalone runCampaign with that seed.
    SuiteConfig sc = smallSuite(2);
    sc.seeds = {0xAB, 0x5eed};
    const SuiteResult suite = runCampaignSuite(sc);
    ASSERT_EQ(suite.seeds, sc.seeds);
    ASSERT_EQ(suite.cells.size(), sc.workloads.size() *
                                      sc.modes.size() *
                                      sc.seeds.size());

    for (std::size_t wi = 0; wi < sc.workloads.size(); ++wi) {
        for (std::size_t mi = 0; mi < sc.modes.size(); ++mi) {
            for (std::size_t si = 0; si < sc.seeds.size(); ++si) {
                CampaignConfig cfg = sc.base;
                cfg.workload = sc.workloads[wi];
                cfg.mode = sc.modes[mi];
                cfg.seed = sc.seeds[si];
                SCOPED_TRACE(testing::Message()
                             << cfg.workload << " mode "
                             << hardeningModeName(cfg.mode) << " seed "
                             << cfg.seed);
                const CampaignResult &cell = suite.cell(wi, mi, si);
                EXPECT_EQ(cell.config.seed, cfg.seed);
                expectSameCell(cell, runCampaign(cfg));
            }
        }
    }
}

TEST(Suite, SharedPagesShrinkSuiteFootprint)
{
    SuiteConfig sc = smallSuite(2);
    const SuiteResult suite = runCampaignSuite(sc);
    ASSERT_EQ(suite.workloadStats.size(), sc.workloads.size());
    for (const SuiteWorkloadStats &ws : suite.workloadStats) {
        SCOPED_TRACE(ws.workload);
        ASSERT_GT(ws.cellSnapshotBytesSum, 0u);
        // Cells fork from one pristine image, so pages no cell dirties
        // are shared and the suite-deduped footprint undercuts the sum
        // of the cells' individual footprints.
        EXPECT_LT(ws.suiteSnapshotBytes, ws.cellSnapshotBytesSum);
    }
}

TEST(Suite, PhaseTimesCoverEveryPhase)
{
    SuiteConfig sc = smallSuite(2);
    const SuiteResult suite = runCampaignSuite(sc);
    // The suite has DupValChks cells, so every phase must have run.
    EXPECT_GT(suite.phase.compileSeconds, 0.0);
    EXPECT_GT(suite.phase.profileSeconds, 0.0);
    EXPECT_GT(suite.phase.baselineSeconds, 0.0);
    EXPECT_GT(suite.phase.goldenSeconds, 0.0);
    EXPECT_GT(suite.phase.trialsSeconds, 0.0);
    // Phase times are CPU seconds of overlapped tasks: they bound the
    // elapsed time from below only through the parallelism available,
    // and cpuSeconds is their explicit total.
    EXPECT_GT(suite.wallSeconds, 0.0);
    EXPECT_DOUBLE_EQ(suite.cpuSeconds, suite.phase.totalSeconds());
    EXPECT_GE(suite.wallSeconds * sc.base.threads,
              suite.cpuSeconds * 0.5);
    // Shared phases are counted in the suite aggregate, not in cells.
    for (const CampaignResult &c : suite.cells) {
        EXPECT_EQ(c.phase.profileSeconds, 0.0);
        EXPECT_EQ(c.phase.baselineSeconds, 0.0);
        EXPECT_GT(c.phase.goldenSeconds, 0.0);
        EXPECT_GT(c.phase.trialsSeconds, 0.0);
        EXPECT_GT(c.trialsPerSec(), 0.0);
    }
}

TEST(Suite, TrialsZeroCharacterizesOnly)
{
    SuiteConfig sc = smallSuite(2);
    sc.base.trials = 0;
    const SuiteResult suite = runCampaignSuite(sc);
    for (const CampaignResult &c : suite.cells) {
        EXPECT_EQ(c.totalTrials(), 0u);
        EXPECT_GT(c.goldenCycles, 0u);
        EXPECT_GT(c.baselineCycles, 0u);
        EXPECT_EQ(c.snapshotCount, 0u);
    }
}

} // namespace
} // namespace softcheck
