/**
 * @file
 * Campaign-level tier equivalence: a fault-injection campaign run on
 * the direct-threaded tier must be bit-identical to the same campaign
 * on the reference interpreter — outcome counts, USDC attribution,
 * golden/baseline characterization, calibration, and snapshot
 * accounting — across the full workload × mode grid and multiple
 * seeds. This is the suite-wide acceptance bar for the threaded tier:
 * anything it gets wrong (a skipped event, a divergent cost charge, a
 * different fault draw) shows up here as a changed grid.
 */

#include <gtest/gtest.h>

#include "fault/suite.hh"

namespace softcheck
{
namespace
{

void
expectSameCell(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.usdcLargeChange, b.usdcLargeChange);
    EXPECT_EQ(a.usdcSmallChange, b.usdcSmallChange);
    EXPECT_EQ(a.goldenDynInstrs, b.goldenDynInstrs);
    EXPECT_EQ(a.goldenCycles, b.goldenCycles);
    EXPECT_EQ(a.goldenCheckEvals, b.goldenCheckEvals);
    EXPECT_EQ(a.baselineCycles, b.baselineCycles);
    EXPECT_EQ(a.calibrationCheckFails, b.calibrationCheckFails);
    EXPECT_EQ(a.disabledCheckCount, b.disabledCheckCount);
    EXPECT_EQ(a.totalCheckCount, b.totalCheckCount);
    EXPECT_EQ(a.snapshotCount, b.snapshotCount);
    EXPECT_EQ(a.snapshotBytes, b.snapshotBytes);
    EXPECT_EQ(a.snapshotBytesFullCopy, b.snapshotBytesFullCopy);
    EXPECT_EQ(a.report.eqChecks, b.report.eqChecks);
    EXPECT_EQ(a.report.valueChecks, b.report.valueChecks);
}

/** Every workload, every hardening mode, two seeds: the threaded-tier
 * suite must reproduce the interpreter-tier suite bit for bit. */
TEST(TierCampaign, SuiteGridBitIdenticalAcrossTiers)
{
    SuiteConfig sc;
    for (const Workload *w : allWorkloads())
        sc.workloads.push_back(w->name);
    sc.modes = {HardeningMode::Original, HardeningMode::DupOnly,
                HardeningMode::DupValChks, HardeningMode::FullDup};
    sc.seeds = {0x5eed, 0xBEEF};
    sc.base.trials = 12;

    sc.base.tier = ExecTier::Interp;
    const SuiteResult ref = runCampaignSuite(sc);

    sc.base.tier = ExecTier::Threaded;
    const SuiteResult got = runCampaignSuite(sc);

    ASSERT_EQ(got.cells.size(), ref.cells.size());
    for (std::size_t i = 0; i < ref.cells.size(); ++i) {
        SCOPED_TRACE(testing::Message()
                     << "cell " << i << " ("
                     << ref.cells[i].config.workload << ", "
                     << hardeningModeName(ref.cells[i].config.mode)
                     << ", seed " << ref.cells[i].config.seed << ")");
        EXPECT_EQ(got.cells[i].config.workload,
                  ref.cells[i].config.workload);
        EXPECT_EQ(got.cells[i].config.seed, ref.cells[i].config.seed);
        expectSameCell(got.cells[i], ref.cells[i]);
    }
    ASSERT_EQ(got.workloadStats.size(), ref.workloadStats.size());
    for (std::size_t w = 0; w < ref.workloadStats.size(); ++w) {
        SCOPED_TRACE(ref.workloadStats[w].workload);
        EXPECT_EQ(got.workloadStats[w].suiteSnapshotBytes,
                  ref.workloadStats[w].suiteSnapshotBytes);
        EXPECT_EQ(got.workloadStats[w].cellSnapshotBytesSum,
                  ref.workloadStats[w].cellSnapshotBytesSum);
    }
}

/** Standalone campaigns with enough trials to populate the whole
 * outcome taxonomy; checked with and without fast-forward snapshots
 * (checkpoints=0 forces every trial through the full-replay path). */
TEST(TierCampaign, StandaloneCampaignMatchesAcrossTiers)
{
    for (const unsigned checkpoints : {32u, 0u}) {
        CampaignConfig cfg;
        cfg.workload = "g721enc";
        cfg.mode = HardeningMode::DupValChks;
        cfg.trials = 150;
        cfg.checkpoints = checkpoints;
        SCOPED_TRACE(testing::Message()
                     << "checkpoints=" << checkpoints);

        cfg.tier = ExecTier::Interp;
        const CampaignResult a = runCampaign(cfg);
        cfg.tier = ExecTier::Threaded;
        const CampaignResult b = runCampaign(cfg);

        expectSameCell(a, b);
        EXPECT_EQ(a.totalTrials(), 150u);
    }
}

} // namespace
} // namespace softcheck
