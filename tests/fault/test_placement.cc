#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fault/campaign.hh"
#include "fault/placement.hh"
#include "fault/suite.hh"

namespace softcheck
{
namespace
{

/**
 * Checkpoint placement, two layers deep:
 *  - unit tests of the optimizer (DP optimality vs. brute force,
 *    greedy sanity, uniform spacing, budget trimming, degenerate
 *    instances), and
 *  - campaign/suite regression tests for the uniform-stride bugs the
 *    placement rework fixed: schedules derived from the unhardened
 *    baseline length (hardened tail uncovered / snapshot overshoot)
 *    and zero strides silently disabling fast-forwarding — plus the
 *    bar that outcome counts are placement-invariant everywhere.
 */

// ---------------------------------------------------------------------
// Optimizer unit tests
// ---------------------------------------------------------------------

std::vector<PlacementCandidate>
skewedCandidates()
{
    // Dirty-page cost concentrated in the middle of the run.
    return {
        {5, 256},   {12, 512},  {20, 256},  {33, 4096},
        {41, 8192}, {57, 2048}, {70, 256},  {88, 512},
    };
}

PlacementRequest
smallRequest(unsigned k, CheckpointPlacement p)
{
    PlacementRequest req;
    req.runLength = 100;
    req.maxCheckpoints = k;
    req.restoreInstrsPerPage = 4.0;
    req.pageBytes = 256;
    req.placement = p;
    return req;
}

/** Min placementCost over all schedules of size <= k (exhaustive). */
double
bruteForceBest(const std::vector<PlacementCandidate> &cands, unsigned k,
               const PlacementRequest &req)
{
    const std::size_t m = cands.size();
    double best = placementCost(cands, {}, req);
    for (uint32_t mask = 1; mask < (1u << m); ++mask) {
        std::vector<uint32_t> chosen;
        for (uint32_t i = 0; i < m; ++i)
            if (mask & (1u << i))
                chosen.push_back(i);
        if (chosen.size() > k)
            continue;
        best = std::min(best, placementCost(cands, chosen, req));
    }
    return best;
}

TEST(Placement, DpMatchesBruteForce)
{
    const auto cands = skewedCandidates();
    for (const unsigned k : {1u, 2u, 3u, 4u, 8u}) {
        const auto req = smallRequest(k, CheckpointPlacement::Adaptive);
        const PlacementResult r = placeCheckpoints(cands, req);
        SCOPED_TRACE(testing::Message() << "k=" << k);
        EXPECT_LE(r.chosen.size(), k);
        // Reported cost is the cost of the reported schedule...
        EXPECT_NEAR(r.expectedFFInstrs,
                    placementCost(cands, r.chosen, req), 1e-9);
        // ...and that schedule is exactly optimal.
        EXPECT_NEAR(r.expectedFFInstrs, bruteForceBest(cands, k, req),
                    1e-9);
    }
}

TEST(Placement, AdaptiveNoWorseThanUniform)
{
    const auto cands = skewedCandidates();
    for (const unsigned k : {1u, 2u, 4u}) {
        const auto ar = placeCheckpoints(
            cands, smallRequest(k, CheckpointPlacement::Adaptive));
        const auto ur = placeCheckpoints(
            cands, smallRequest(k, CheckpointPlacement::Uniform));
        SCOPED_TRACE(testing::Message() << "k=" << k);
        EXPECT_LE(ar.expectedFFInstrs, ur.expectedFFInstrs + 1e-9);
    }
}

TEST(Placement, UniformPicksEvenlySpacedCandidates)
{
    // Dense grid: candidate every 10 instructions, L = 1000, K = 4
    // -> the nearest candidates to 200/400/600/800 are those exactly.
    std::vector<PlacementCandidate> cands;
    for (uint64_t i = 1; i <= 99; ++i)
        cands.push_back({i * 10, 256});
    PlacementRequest req;
    req.runLength = 1000;
    req.maxCheckpoints = 4;
    req.placement = CheckpointPlacement::Uniform;
    const PlacementResult r = placeCheckpoints(cands, req);
    ASSERT_EQ(r.chosen.size(), 4u);
    EXPECT_EQ(cands[r.chosen[0]].dynInstr, 200u);
    EXPECT_EQ(cands[r.chosen[1]].dynInstr, 400u);
    EXPECT_EQ(cands[r.chosen[2]].dynInstr, 600u);
    EXPECT_EQ(cands[r.chosen[3]].dynInstr, 800u);
}

TEST(Placement, DegenerateInstances)
{
    PlacementRequest req;
    req.runLength = 100;
    req.maxCheckpoints = 4;

    // No candidates: pristine-only schedule, E[cost] = E[X] = L/2.
    const PlacementResult none = placeCheckpoints({}, req);
    EXPECT_TRUE(none.chosen.empty());
    EXPECT_NEAR(none.expectedFFInstrs, 50.0, 1e-9);

    // K = 0: same.
    req.maxCheckpoints = 0;
    const PlacementResult k0 =
        placeCheckpoints(skewedCandidates(), req);
    EXPECT_TRUE(k0.chosen.empty());
    EXPECT_NEAR(k0.expectedFFInstrs, 50.0, 1e-9);

    // K >= M: never worse than keeping nothing. Uniform maps targets
    // to nearest candidates (a candidate nearest no target is simply
    // not picked), so its schedule is non-empty but can be < M.
    req.maxCheckpoints = 100;
    const PlacementResult all =
        placeCheckpoints(skewedCandidates(), req);
    EXPECT_LE(all.expectedFFInstrs, 50.0 + 1e-9);
    req.placement = CheckpointPlacement::Uniform;
    const PlacementResult uall =
        placeCheckpoints(skewedCandidates(), req);
    EXPECT_FALSE(uall.chosen.empty());
    EXPECT_LE(uall.chosen.size(), skewedCandidates().size());
}

TEST(Placement, ExpensiveSnapshotNotWorthKeeping)
{
    // One candidate at midpoint whose restore cost dwarfs the replay
    // it saves: adaptive keeps nothing, uniform keeps it anyway.
    const std::vector<PlacementCandidate> cands = {{50, 1u << 20}};
    auto req = smallRequest(1, CheckpointPlacement::Adaptive);
    const PlacementResult a = placeCheckpoints(cands, req);
    EXPECT_TRUE(a.chosen.empty());
    req.placement = CheckpointPlacement::Uniform;
    const PlacementResult u = placeCheckpoints(cands, req);
    ASSERT_EQ(u.chosen.size(), 1u);
    EXPECT_LT(a.expectedFFInstrs, u.expectedFFInstrs);
}

TEST(Placement, GreedyLargeInstanceSane)
{
    // K * M^2 > 64e6 forces the greedy path; it must stay feasible,
    // sorted, and no worse than uniform on the same instance.
    std::vector<PlacementCandidate> cands;
    const std::size_t m = 1024;
    for (std::size_t i = 0; i < m; ++i)
        cands.push_back(
            {static_cast<uint64_t>(i * 7 + 1), 256 * ((i * 37) % 5)});
    PlacementRequest req;
    req.runLength = m * 7 + 10;
    req.maxCheckpoints = 128;
    req.placement = CheckpointPlacement::Adaptive;
    const PlacementResult g = placeCheckpoints(cands, req);
    EXPECT_LE(g.chosen.size(), 128u);
    EXPECT_FALSE(g.chosen.empty());
    EXPECT_TRUE(std::is_sorted(g.chosen.begin(), g.chosen.end()));
    EXPECT_TRUE(std::adjacent_find(g.chosen.begin(), g.chosen.end()) ==
                g.chosen.end());
    EXPECT_NEAR(g.expectedFFInstrs, placementCost(cands, g.chosen, req),
                1e-6);
    req.placement = CheckpointPlacement::Uniform;
    const PlacementResult u = placeCheckpoints(cands, req);
    EXPECT_LE(g.expectedFFInstrs, u.expectedFFInstrs + 1e-6);
}

TEST(Placement, CheapestRemovalIsCheapest)
{
    const auto cands = skewedCandidates();
    const auto req = smallRequest(4, CheckpointPlacement::Adaptive);
    const std::vector<uint32_t> chosen = {1, 3, 5, 7};
    const std::size_t p = cheapestRemoval(cands, chosen, req);
    ASSERT_LT(p, chosen.size());
    std::vector<uint32_t> after = chosen;
    after.erase(after.begin() + static_cast<std::ptrdiff_t>(p));
    const double got = placementCost(cands, after, req);
    for (std::size_t i = 0; i < chosen.size(); ++i) {
        std::vector<uint32_t> alt = chosen;
        alt.erase(alt.begin() + static_cast<std::ptrdiff_t>(i));
        EXPECT_LE(got, placementCost(cands, alt, req) + 1e-9);
    }
}

// ---------------------------------------------------------------------
// Campaign-level regression tests
// ---------------------------------------------------------------------

CampaignConfig
smallCampaign(const char *workload, HardeningMode mode)
{
    CampaignConfig cfg;
    cfg.workload = workload;
    cfg.mode = mode;
    cfg.trials = 48;
    cfg.seed = 0xAB;
    cfg.threads = 2;
    return cfg;
}

void
expectSameOutcomes(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.usdcLargeChange, b.usdcLargeChange);
    EXPECT_EQ(a.usdcSmallChange, b.usdcSmallChange);
    EXPECT_EQ(a.goldenDynInstrs, b.goldenDynInstrs);
    EXPECT_EQ(a.goldenCycles, b.goldenCycles);
}

uint64_t
maxScheduleGap(const CampaignResult &r)
{
    uint64_t prev = 0, gap = 0;
    for (const uint64_t s : r.snapshotDynInstrs) {
        gap = std::max(gap, s - prev);
        prev = s;
    }
    return std::max(gap, r.goldenDynInstrs - prev);
}

/**
 * Regression for the hardened-run stride bug: the old schedule derived
 * its stride from the *unhardened* baseline's dynamic length, so a
 * FullDup golden run (~1.7x longer) either overshot the requested K or
 * left its tail sparsely covered, depending on where recording
 * stopped. Placement now works on the golden run's own length: the
 * kept schedule must respect K and cover the whole hardened run with
 * bounded gaps (the final, tail gap included).
 */
TEST(PlacementCampaign, HardenedRunGapsBoundedAndKRespected)
{
    CampaignConfig cfg =
        smallCampaign("tiff2bw", HardeningMode::FullDup);
    cfg.checkpoints = 16;
    cfg.placement = CheckpointPlacement::Uniform;
    const CampaignResult r = runCampaign(cfg);
    ASSERT_GE(r.snapshotCount, 15u);
    ASSERT_LE(r.snapshotCount, 16u);
    ASSERT_EQ(r.snapshotDynInstrs.size(), r.snapshotCount);
    EXPECT_TRUE(std::is_sorted(r.snapshotDynInstrs.begin(),
                               r.snapshotDynInstrs.end()));
    // Even spacing on the candidate grid: every gap — including the
    // one from the last snapshot to the hardened run's end — stays
    // within 2x the ideal stride (slack for grid quantization).
    const uint64_t ideal =
        r.goldenDynInstrs / (cfg.checkpoints + 1) + 1;
    EXPECT_LE(maxScheduleGap(r), 2 * ideal);

    // Adaptive placement on the same cell may trade gap length for
    // restore cost but must not be worse under its own objective.
    cfg.placement = CheckpointPlacement::Adaptive;
    const CampaignResult a = runCampaign(cfg);
    EXPECT_LE(a.snapshotCount, 16u);
    EXPECT_LE(a.expectedFastForwardInstrs,
              r.expectedFastForwardInstrs + 1e-6);
    expectSameOutcomes(r, a);
}

/**
 * Regression for the zero-stride bug: checkpoints > the run length
 * used to floor the stride to 0, which silently disabled
 * fast-forwarding (and convergence pruning with it). K is now clamped
 * to the candidate grid, so even an absurd K keeps at least one
 * resume point — with outcomes identical to scratch replay.
 */
TEST(PlacementCampaign, TinyWorkloadHugeKKeepsFastForwarding)
{
    CampaignConfig cfg =
        smallCampaign("tiff2bw", HardeningMode::Original);
    cfg.checkpoints = 0;
    const CampaignResult scratch = runCampaign(cfg);

    for (const unsigned k : {256u, 1000000u}) {
        cfg.checkpoints = k;
        const CampaignResult r = runCampaign(cfg);
        SCOPED_TRACE(testing::Message() << "K=" << k);
        EXPECT_GE(r.snapshotCount, 1u); // never silently disabled
        // Bounded by the ~1024-point candidate grid; the stride floors,
        // so the count can overshoot the nominal cap by the rounding.
        EXPECT_LE(r.snapshotCount, 2048u);
        EXPECT_GT(r.expectedFastForwardInstrs, 0.0);
        EXPECT_GT(r.measuredFFInstrsPerTrial(), 0.0);
        expectSameOutcomes(scratch, r);
    }
}

TEST(PlacementCampaign, SnapshotBudgetRespected)
{
    CampaignConfig cfg =
        smallCampaign("g721enc", HardeningMode::DupValChks);
    cfg.checkpoints = 32;
    const CampaignResult full = runCampaign(cfg);
    ASSERT_GT(full.snapshotCount, 1u);
    ASSERT_GT(full.snapshotBytes, 0u);

    cfg.snapshotBudgetBytes = full.snapshotBytes / 2;
    const CampaignResult trimmed = runCampaign(cfg);
    EXPECT_LE(trimmed.snapshotBytes, cfg.snapshotBudgetBytes);
    EXPECT_LT(trimmed.snapshotCount, full.snapshotCount);
    // Trimming raises the expected cost, never the outcomes.
    EXPECT_GE(trimmed.expectedFastForwardInstrs,
              full.expectedFastForwardInstrs - 1e-6);
    expectSameOutcomes(full, trimmed);
}

/**
 * The placement-invariance bar (campaign level): outcome counts and
 * the measured fast-forward accounting must be bit-identical across
 * execution tiers and thread counts for a fixed placement, and the
 * outcomes must further match scratch replay and the other placement.
 */
struct PlacementEquivCase
{
    const char *workload;
    HardeningMode mode;
};

class PlacementEquiv
    : public ::testing::TestWithParam<PlacementEquivCase>
{};

TEST_P(PlacementEquiv, OutcomesInvariantAcrossPlacementsAndTiers)
{
    CampaignConfig cfg =
        smallCampaign(GetParam().workload, GetParam().mode);
    cfg.checkpoints = 0;
    const CampaignResult scratch = runCampaign(cfg);

    for (const CheckpointPlacement p :
         {CheckpointPlacement::Uniform, CheckpointPlacement::Adaptive}) {
        cfg.checkpoints = 32;
        cfg.placement = p;

        cfg.tier = ExecTier::Interp;
        const CampaignResult interp = runCampaign(cfg);
        SCOPED_TRACE(placementName(p));
        expectSameOutcomes(scratch, interp);

        // Same placement, other tiers/threads: outcomes AND measured
        // fast-forward sums must reproduce bit for bit.
        for (const ExecTier tier :
             {ExecTier::Threaded, ExecTier::Lockstep}) {
            cfg.tier = tier;
            const CampaignResult r = runCampaign(cfg);
            expectSameOutcomes(interp, r);
            EXPECT_EQ(interp.ffReplayInstrs, r.ffReplayInstrs);
            EXPECT_EQ(interp.ffRestorePages, r.ffRestorePages);
            EXPECT_EQ(interp.snapshotDynInstrs, r.snapshotDynInstrs);
        }
        cfg.tier = ExecTier::Interp;
        cfg.threads = 4;
        const CampaignResult par = runCampaign(cfg);
        expectSameOutcomes(interp, par);
        EXPECT_EQ(interp.ffReplayInstrs, par.ffReplayInstrs);
        EXPECT_EQ(interp.ffRestorePages, par.ffRestorePages);
        cfg.threads = 2;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SmokeSubset, PlacementEquiv,
    ::testing::Values(
        PlacementEquivCase{"tiff2bw", HardeningMode::DupValChks},
        PlacementEquivCase{"g721enc", HardeningMode::FullDup},
        PlacementEquivCase{"segm", HardeningMode::DupOnly}),
    [](const auto &info) {
        const char *mode = "";
        switch (info.param.mode) {
          case HardeningMode::Original: mode = "Original"; break;
          case HardeningMode::DupOnly: mode = "DupOnly"; break;
          case HardeningMode::DupValChks: mode = "DupValChks"; break;
          case HardeningMode::FullDup: mode = "FullDup"; break;
        }
        return std::string(info.param.workload) + "_" + mode;
    });

/** Suite level: adaptive vs. uniform vs. no checkpoints, at several
 * pool thread counts, must agree cell by cell on every outcome. */
TEST(PlacementSuite, CellsInvariantAcrossPlacementsAndThreads)
{
    SuiteConfig sc;
    sc.workloads = {"tiff2bw", "g721enc"};
    sc.modes = {HardeningMode::Original, HardeningMode::DupOnly,
                HardeningMode::DupValChks};
    sc.base.trials = 48;
    sc.base.seed = 0xAB;
    sc.base.threads = 1;
    sc.base.checkpoints = 0;
    const SuiteResult scratch = runCampaignSuite(sc);

    for (const unsigned threads : {1u, 2u, 4u}) {
        for (const CheckpointPlacement p :
             {CheckpointPlacement::Uniform,
              CheckpointPlacement::Adaptive}) {
            SuiteConfig v = sc;
            v.base.threads = threads;
            v.base.checkpoints = 32;
            v.base.placement = p;
            const SuiteResult got = runCampaignSuite(v);
            ASSERT_EQ(got.cells.size(), scratch.cells.size());
            for (std::size_t i = 0; i < got.cells.size(); ++i) {
                SCOPED_TRACE(testing::Message()
                             << placementName(p) << " threads "
                             << threads << " cell " << i << " ("
                             << scratch.cells[i].config.workload
                             << ", "
                             << hardeningModeName(
                                    scratch.cells[i].config.mode)
                             << ")");
                expectSameOutcomes(scratch.cells[i], got.cells[i]);
            }
        }
    }
}

} // namespace
} // namespace softcheck
