#include <gtest/gtest.h>

#include <bit>

#include "fault/campaign.hh"

namespace softcheck
{
namespace
{

FaultOutcome
intFault(TypeKind ty, int64_t before, int64_t after)
{
    FaultOutcome f;
    f.injected = true;
    f.slotType = ty;
    f.before = truncBits(static_cast<uint64_t>(before), typeBits(ty));
    f.after = truncBits(static_cast<uint64_t>(after), typeBits(ty));
    return f;
}

FaultOutcome
f64Fault(double before, double after)
{
    FaultOutcome f;
    f.injected = true;
    f.slotType = TypeKind::F64;
    f.before = std::bit_cast<uint64_t>(before);
    f.after = std::bit_cast<uint64_t>(after);
    return f;
}

TEST(ValueChange, HighBitFlipIsLarge)
{
    // 100 -> 100 + 2^30
    EXPECT_TRUE(isLargeValueChange(
        intFault(TypeKind::I32, 100, 100 + (1 << 30))));
}

TEST(ValueChange, LowBitFlipIsSmall)
{
    EXPECT_FALSE(isLargeValueChange(intFault(TypeKind::I32, 100, 101)));
    EXPECT_FALSE(isLargeValueChange(intFault(TypeKind::I32, 100, 108)));
}

TEST(ValueChange, CollapseTowardZeroIsLarge)
{
    EXPECT_TRUE(
        isLargeValueChange(intFault(TypeKind::I32, 1 << 20, 0)));
}

TEST(ValueChange, SignBitFlipOnSmallValue)
{
    // 5 -> 5 - 2^31: |after| >> |before|.
    EXPECT_TRUE(isLargeValueChange(
        intFault(TypeKind::I32, 5, 5 - (int64_t(1) << 31))));
}

TEST(ValueChange, ZeroToSmallIsSmall)
{
    // ref = max(|0|, 1); 4 <= 8*1.
    EXPECT_FALSE(isLargeValueChange(intFault(TypeKind::I32, 0, 4)));
    EXPECT_TRUE(isLargeValueChange(intFault(TypeKind::I32, 0, 1000)));
}

TEST(ValueChange, DoubleExponentFlipIsLarge)
{
    EXPECT_TRUE(isLargeValueChange(f64Fault(1.5, 1.5e200)));
    EXPECT_TRUE(isLargeValueChange(f64Fault(1.5e10, 1.5e-10)));
}

TEST(ValueChange, DoubleMantissaFlipIsSmall)
{
    EXPECT_FALSE(isLargeValueChange(f64Fault(1.5, 1.5000001)));
    EXPECT_FALSE(isLargeValueChange(f64Fault(-8.0, -9.0)));
}

TEST(ValueChange, NonFiniteIsLarge)
{
    EXPECT_TRUE(isLargeValueChange(
        f64Fault(1.0, std::numeric_limits<double>::infinity())));
    EXPECT_TRUE(isLargeValueChange(
        f64Fault(1.0, std::numeric_limits<double>::quiet_NaN())));
}

} // namespace
} // namespace softcheck
