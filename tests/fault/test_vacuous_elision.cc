/**
 * @file
 * Vacuous-check elimination acceptance test: eliding checks the range
 * analysis proves can never fire must leave every campaign outcome
 * bit-identical — same trial classifications, same golden dynamic
 * instruction count and cycles, same fault-site index space — while
 * strictly reducing the number of check comparisons actually evaluated.
 *
 * The elision keeps the check instructions in place (fetched and
 * costed) and only skips the comparison, so the two suites below differ
 * in nothing but goldenCheckEvals.
 */

#include <gtest/gtest.h>

#include "common/test_util.hh"
#include "fault/suite.hh"

using namespace softcheck;

namespace
{

TEST(VacuousElision, SuiteOutcomesBitIdenticalWithFewerCheckEvals)
{
    SuiteConfig cfg;
    // The four workloads whose hardened modules carry a provably
    // vacuous check (masked table indices), plus one with none as a
    // control.
    cfg.workloads = {"g721enc", "g721dec", "mp3enc", "mp3dec",
                     "tiff2bw"};
    cfg.modes = {HardeningMode::DupValChks};
    cfg.base.trials = 40;
    cfg.base.threads = 1;

    SuiteConfig elided_cfg = cfg;
    elided_cfg.base.elideVacuousChecks = true;

    const SuiteResult plain = runCampaignSuite(cfg);
    const SuiteResult elided = runCampaignSuite(elided_cfg);
    ASSERT_EQ(plain.cells.size(), elided.cells.size());

    unsigned workloads_with_vacuous = 0;
    for (std::size_t wi = 0; wi < cfg.workloads.size(); ++wi) {
        const CampaignResult &a = plain.cell(wi, 0);
        const CampaignResult &b = elided.cell(wi, 0);
        SCOPED_TRACE(cfg.workloads[wi]);

        // Bit-identical campaign outcomes.
        EXPECT_EQ(a.counts, b.counts);
        EXPECT_EQ(a.usdcLargeChange, b.usdcLargeChange);
        EXPECT_EQ(a.usdcSmallChange, b.usdcSmallChange);
        EXPECT_EQ(a.goldenDynInstrs, b.goldenDynInstrs);
        EXPECT_EQ(a.goldenCycles, b.goldenCycles);
        EXPECT_EQ(a.baselineCycles, b.baselineCycles);
        EXPECT_EQ(a.calibrationCheckFails, b.calibrationCheckFails);
        EXPECT_EQ(a.totalCheckCount, b.totalCheckCount);

        // Same static check population; elision is metadata only.
        EXPECT_EQ(a.report.checkOne + a.report.checkTwo +
                      a.report.checkRange,
                  b.report.checkOne + b.report.checkTwo +
                      b.report.checkRange);
        EXPECT_EQ(a.report.vacuousChecks, b.report.vacuousChecks);
        EXPECT_EQ(a.report.elidedChecks, 0u);
        EXPECT_EQ(b.report.elidedChecks, b.report.vacuousChecks);

        if (b.report.elidedChecks > 0) {
            ++workloads_with_vacuous;
            EXPECT_LT(b.goldenCheckEvals, a.goldenCheckEvals)
                << "elided checks must reduce dynamic comparisons";
        } else {
            EXPECT_EQ(b.goldenCheckEvals, a.goldenCheckEvals);
        }
    }
    // The acceptance bar: a real dynamic reduction on >= 3 workloads.
    EXPECT_GE(workloads_with_vacuous, 3u);
}

} // namespace
