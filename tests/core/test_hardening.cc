#include <gtest/gtest.h>

#include <bit>
#include <sstream>

#include "analysis/dominance_verify.hh"
#include "common/test_util.hh"
#include "core/pipeline.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"

namespace softcheck
{
namespace
{

const char *kCrcKernel = R"(
const CRC_TAB: i32[8] = [0, 11, 22, 33, 44, 55, 66, 77];
fn main(data: ptr<i32>, n: i32) -> i32 {
    var crc: i32 = 7;
    for (var i: i32 = 0; i < n; i = i + 1) {
        var d: i32 = data[i];
        var tv: i32 = CRC_TAB[d & 7];
        crc = ((crc << 3) ^ tv) & 65535;
    }
    return crc;
})";

/** Profile kCrcKernel on a simple input and return the ProfileData. */
ProfileData
profileCrcKernel(Module &mod)
{
    const unsigned sites = assignProfileSites(mod);
    ExecModule em(mod);
    Memory mem;
    const uint64_t buf = mem.alloc(4 * 64);
    for (int i = 0; i < 64; ++i)
        mem.write(buf + 4 * i, 4, static_cast<uint64_t>(i * 13 % 97));
    ValueProfiler prof(em.numProfileSites());
    ExecOptions opts;
    opts.profiler = &prof;
    Interpreter interp(em, mem);
    auto r = interp.run(em.functionIndex("main"), {buf, 64}, opts);
    EXPECT_EQ(r.term, Termination::Ok);
    return ProfileData(prof, floatSiteFlags(mod, sites));
}

TEST(Duplication, CreatesShadowPhisAndEqChecks)
{
    auto mod = compileMiniLang(kCrcKernel, "t");
    HardeningOptions opts;
    opts.mode = HardeningMode::DupOnly;
    auto report = hardenModule(*mod, opts);

    EXPECT_EQ(report.stateVars, 2u); // crc, i
    EXPECT_EQ(report.shadowPhis, 2u);
    EXPECT_GT(report.duplicatedInstrs, 0u);
    EXPECT_GT(report.eqChecks, 0u);
    EXPECT_EQ(report.valueChecks, 0u);

    const std::string text = moduleToString(*mod);
    EXPECT_NE(text.find("!dup"), std::string::npos);
    EXPECT_NE(text.find("check.eq"), std::string::npos);
}

TEST(Duplication, ShadowChainUsesShadowPhi)
{
    auto mod = compileMiniLang(kCrcKernel, "t");
    HardeningOptions opts;
    opts.mode = HardeningMode::DupOnly;
    hardenModule(*mod, opts);

    // Find a duplicated instruction whose operand is a shadow phi: the
    // duplicated chain must read the *shadow* state (crcD in Fig. 4).
    bool dup_reads_shadow = false;
    Function *fn = mod->getFunction("main");
    for (auto &bb : *fn) {
        for (auto &inst : *bb) {
            if (!inst->isDuplicate() || inst->opcode() == Opcode::Phi)
                continue;
            for (Value *op : inst->operands()) {
                auto *def = dynamic_cast<Instruction *>(op);
                if (def && def->opcode() == Opcode::Phi &&
                    def->isDuplicate())
                    dup_reads_shadow = true;
            }
        }
    }
    EXPECT_TRUE(dup_reads_shadow);
}

TEST(Duplication, ChainsTerminateAtLoads)
{
    auto mod = compileMiniLang(kCrcKernel, "t");
    HardeningOptions opts;
    opts.mode = HardeningMode::DupOnly;
    hardenModule(*mod, opts);
    Function *fn = mod->getFunction("main");
    for (auto &bb : *fn) {
        for (auto &inst : *bb) {
            if (inst->isDuplicate())
                EXPECT_NE(inst->opcode(), Opcode::Load);
        }
    }
}

TEST(Duplication, HardenedModuleStillVerifies)
{
    auto mod = compileMiniLang(kCrcKernel, "t");
    HardeningOptions opts;
    opts.mode = HardeningMode::DupOnly;
    hardenModule(*mod, opts);
    EXPECT_TRUE(verifyModule(*mod).empty());
    for (Function *fn : mod->functions())
        EXPECT_TRUE(verifyDominance(*fn).empty());
}

TEST(ValueChecks, InsertedOnAmenableSites)
{
    auto mod = compileMiniLang(kCrcKernel, "t");
    ProfileData pd = profileCrcKernel(*mod);
    ASSERT_GT(pd.numAmenable(), 0u);

    HardeningOptions opts;
    opts.mode = HardeningMode::DupValChks;
    auto report = hardenModule(*mod, opts, &pd);
    EXPECT_GT(report.valueChecks, 0u);
    EXPECT_TRUE(verifyModule(*mod).empty());
}

TEST(ValueChecks, HugeProfileBoundsAreClampedNotWrapped)
{
    // A loaded profile can carry bounds outside the long long range
    // (here a frequent range reaching toward UINT64_MAX on i64 sites);
    // llround on such a bound is undefined and on x86 collapses to
    // LLONG_MIN, turning an always-true range check into an
    // always-firing one. The bound must clamp to the i64 domain edge
    // instead, leaving fault-free behaviour unchanged.
    const char *src = R"(
fn main(data: ptr<i64>, n: i32) -> i64 {
    var acc: i64 = 1;
    for (var i: i32 = 0; i < n; i = i + 1) {
        acc = acc + data[i] * 3;
    }
    return acc;
})";

    auto run_kernel = [&](Module &m) {
        ExecModule em(m);
        Memory mem;
        const uint64_t buf = mem.alloc(8 * 16);
        for (int i = 0; i < 16; ++i)
            mem.write(buf + 8 * i, 8,
                      static_cast<uint64_t>(i * 977 + 5));
        Interpreter interp(em, mem);
        return interp.run(em.functionIndex("main"), {buf, 16}, {});
    };

    uint64_t ref_ret;
    {
        auto ref = compileMiniLang(src, "t");
        auto r = run_kernel(*ref);
        ASSERT_EQ(r.term, Termination::Ok);
        ref_ret = r.retValue;
    }

    auto mod = compileMiniLang(src, "t");
    const unsigned sites = assignProfileSites(*mod);
    ASSERT_GT(sites, 0u);

    // Craft a profile via the text format (shape samples v0 v1 cov,
    // doubles as bit patterns): every site gets a range [1, 1.6e19].
    // The hi bound exceeds LLONG_MAX (~9.2e18) but the span stays
    // under 2^64-1 so i64 checks are not suppressed as whole-domain.
    std::ostringstream os;
    os << sites << "\n";
    for (unsigned i = 0; i < sites; ++i)
        os << 3 << " " << 1000 << " "
           << std::bit_cast<uint64_t>(1.0) << " "
           << std::bit_cast<uint64_t>(1.6e19) << " "
           << std::bit_cast<uint64_t>(1.0) << "\n";
    std::istringstream is(os.str());
    ProfileData pd = ProfileData::load(is);

    HardeningOptions opts;
    opts.mode = HardeningMode::DupValChks;
    auto report = hardenModule(*mod, opts, &pd);
    EXPECT_GT(report.valueChecks, 0u);
    EXPECT_TRUE(verifyModule(*mod).empty());

    // All runtime values sit inside the clamped range, so no check
    // may fire and the output must match the unhardened run.
    auto r = run_kernel(*mod);
    ASSERT_EQ(r.term, Termination::Ok);
    EXPECT_EQ(r.retValue, ref_ret);
}

TEST(ValueChecks, Opt1SuppressesShallowChecks)
{
    auto mod1 = compileMiniLang(kCrcKernel, "t");
    ProfileData pd1 = profileCrcKernel(*mod1);
    HardeningOptions with_opt1;
    with_opt1.mode = HardeningMode::DupValChks;
    with_opt1.enableOpt1 = true;
    auto r1 = hardenModule(*mod1, with_opt1, &pd1);

    auto mod2 = compileMiniLang(kCrcKernel, "t");
    ProfileData pd2 = profileCrcKernel(*mod2);
    HardeningOptions no_opt1;
    no_opt1.mode = HardeningMode::DupValChks;
    no_opt1.enableOpt1 = false;
    auto r2 = hardenModule(*mod2, no_opt1, &pd2);

    EXPECT_GT(r1.suppressedByOpt1, 0u);
    EXPECT_LT(r1.valueChecks, r2.valueChecks);
}

TEST(ValueChecks, Opt2CutsDuplicationChains)
{
    auto mod1 = compileMiniLang(kCrcKernel, "t");
    ProfileData pd1 = profileCrcKernel(*mod1);
    HardeningOptions with_opt2;
    with_opt2.mode = HardeningMode::DupValChks;
    auto r1 = hardenModule(*mod1, with_opt2, &pd1);

    auto mod2 = compileMiniLang(kCrcKernel, "t");
    ProfileData pd2 = profileCrcKernel(*mod2);
    HardeningOptions no_opt2;
    no_opt2.mode = HardeningMode::DupValChks;
    no_opt2.enableOpt2 = false;
    auto r2 = hardenModule(*mod2, no_opt2, &pd2);

    // With Opt 2 the chains are cut at amenable instructions, so fewer
    // instructions are duplicated.
    EXPECT_LE(r1.duplicatedInstrs, r2.duplicatedInstrs);
}

TEST(FullDuplication, DuplicatesMoreThanSelective)
{
    auto mod1 = compileMiniLang(kCrcKernel, "t");
    HardeningOptions sel;
    sel.mode = HardeningMode::DupOnly;
    auto r1 = hardenModule(*mod1, sel);

    auto mod2 = compileMiniLang(kCrcKernel, "t");
    HardeningOptions full;
    full.mode = HardeningMode::FullDup;
    auto r2 = hardenModule(*mod2, full);

    EXPECT_GT(r2.duplicatedInstrs, r1.duplicatedInstrs);
    EXPECT_GT(r2.eqChecks, 0u);
    EXPECT_TRUE(verifyModule(*mod2).empty());
}

TEST(FullDuplication, LoadsAndStoresNotDuplicated)
{
    auto mod = compileMiniLang(kCrcKernel, "t");
    HardeningOptions full;
    full.mode = HardeningMode::FullDup;
    hardenModule(*mod, full);
    for (Function *fn : mod->functions()) {
        for (auto &bb : *fn) {
            for (auto &inst : *bb) {
                if (inst->isDuplicate()) {
                    EXPECT_NE(inst->opcode(), Opcode::Load);
                    EXPECT_NE(inst->opcode(), Opcode::Store);
                }
            }
        }
    }
}

TEST(Pipeline, OriginalModeIsIdentity)
{
    auto mod = compileMiniLang(kCrcKernel, "t");
    const unsigned before = mod->totalInstructions();
    HardeningOptions opts;
    opts.mode = HardeningMode::Original;
    auto report = hardenModule(*mod, opts);
    EXPECT_EQ(mod->totalInstructions(), before);
    EXPECT_EQ(report.stats.allChecks(), 0u);
    EXPECT_EQ(report.stats.duplicatedInstructions, 0u);
}

TEST(Pipeline, DupValChksRequiresProfile)
{
    auto mod = compileMiniLang(kCrcKernel, "t");
    HardeningOptions opts;
    opts.mode = HardeningMode::DupValChks;
    EXPECT_THROW(hardenModule(*mod, opts, nullptr), FatalError);
}

TEST(Pipeline, CheckIdsAreUniqueAndDense)
{
    auto mod = compileMiniLang(kCrcKernel, "t");
    ProfileData pd = profileCrcKernel(*mod);
    HardeningOptions opts;
    opts.mode = HardeningMode::DupValChks;
    auto report = hardenModule(*mod, opts, &pd);
    std::set<int> seen;
    for (Function *fn : mod->functions()) {
        for (auto &bb : *fn) {
            for (auto &inst : *bb) {
                if (isCheck(inst->opcode())) {
                    EXPECT_GE(inst->checkId(), 0);
                    EXPECT_LT(inst->checkId(),
                              static_cast<int>(report.numCheckIds));
                    EXPECT_TRUE(seen.insert(inst->checkId()).second);
                }
            }
        }
    }
    EXPECT_EQ(seen.size(), report.numCheckIds);
}

/**
 * Core semantic property: hardening must not change fault-free
 * behaviour. Checked across all modes on a composite kernel.
 */
class HardeningPreservesSemantics
    : public ::testing::TestWithParam<HardeningMode>
{};

TEST_P(HardeningPreservesSemantics, FaultFreeOutputUnchanged)
{
    const char *src = R"(
        const TAB: i32[16] = [2, 3, 5, 7, 11, 13, 17, 19,
                              23, 29, 31, 37, 41, 43, 47, 53];
        fn mix(a: i32, b: i32) -> i32 {
            return ((a * 31 + b) ^ (a >> 3)) & 1048575;
        }
        fn main(out: ptr<i32>, data: ptr<i32>, n: i32) -> i32 {
            var h: i32 = 1;
            var acc: f64 = 0.0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                var v: i32 = data[i];
                h = mix(h, v + TAB[v & 15]);
                acc = acc + f64(v) * 0.5;
                out[i] = h & 255;
            }
            return h + i32(acc);
        })";

    auto make_mem = [](Memory &mem, uint64_t &out, uint64_t &in) {
        out = mem.alloc(4 * 32);
        in = mem.alloc(4 * 32);
        for (int i = 0; i < 32; ++i)
            mem.write(in + 4 * i, 4, static_cast<uint64_t>(i * 7 + 3));
    };

    // Reference: original semantics.
    uint64_t ref_ret;
    std::vector<uint64_t> ref_out(32);
    {
        Memory mem;
        uint64_t out, in;
        make_mem(mem, out, in);
        auto mod = compileMiniLang(src, "t");
        ExecModule em(*mod);
        Interpreter interp(em, mem);
        auto r = interp.run(em.functionIndex("main"), {out, in, 32}, {});
        ASSERT_EQ(r.term, Termination::Ok);
        ref_ret = r.retValue;
        for (int i = 0; i < 32; ++i)
            mem.read(out + 4 * i, 4, ref_out[static_cast<size_t>(i)]);
    }

    // Hardened run.
    auto mod = compileMiniLang(src, "t");
    ProfileData pd;
    if (GetParam() == HardeningMode::DupValChks) {
        const unsigned sites = assignProfileSites(*mod);
        ExecModule em(*mod);
        Memory mem;
        uint64_t out, in;
        make_mem(mem, out, in);
        ValueProfiler prof(em.numProfileSites());
        ExecOptions popts;
        popts.profiler = &prof;
        Interpreter interp(em, mem);
        auto r = interp.run(em.functionIndex("main"), {out, in, 32},
                            popts);
        ASSERT_EQ(r.term, Termination::Ok);
        pd = ProfileData(prof, floatSiteFlags(*mod, sites));
    }
    HardeningOptions hopts;
    hopts.mode = GetParam();
    hardenModule(*mod, hopts,
                 GetParam() == HardeningMode::DupValChks ? &pd
                                                         : nullptr);

    Memory mem;
    uint64_t out, in;
    make_mem(mem, out, in);
    ExecModule em(*mod);
    Interpreter interp(em, mem);
    auto r = interp.run(em.functionIndex("main"), {out, in, 32}, {});
    ASSERT_EQ(r.term, Termination::Ok) << hardeningModeName(GetParam());
    EXPECT_EQ(r.retValue, ref_ret);
    for (int i = 0; i < 32; ++i) {
        uint64_t v;
        mem.read(out + 4 * i, 4, v);
        EXPECT_EQ(v, ref_out[static_cast<size_t>(i)]) << "index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, HardeningPreservesSemantics,
    ::testing::Values(HardeningMode::Original, HardeningMode::DupOnly,
                      HardeningMode::DupValChks,
                      HardeningMode::FullDup),
    [](const auto &info) {
        switch (info.param) {
          case HardeningMode::Original: return "Original";
          case HardeningMode::DupOnly: return "DupOnly";
          case HardeningMode::DupValChks: return "DupValChks";
          case HardeningMode::FullDup: return "FullDup";
        }
        return "Unknown";
    });

} // namespace
} // namespace softcheck
