#include <gtest/gtest.h>

#include "common/test_util.hh"
#include "core/state_vars.hh"

namespace softcheck
{
namespace
{

std::vector<StateVar>
stateVarsOf(const char *src, const char *fn_name = "main")
{
    static std::vector<std::unique_ptr<Module>> keep_alive;
    keep_alive.push_back(compileMiniLang(src, "t"));
    Function *fn = keep_alive.back()->getFunction(fn_name);
    static std::vector<std::unique_ptr<DominatorTree>> dts;
    static std::vector<std::unique_ptr<LoopInfo>> lis;
    dts.push_back(std::make_unique<DominatorTree>(*fn));
    lis.push_back(std::make_unique<LoopInfo>(*fn, *dts.back()));
    return findStateVariables(*fn, *lis.back());
}

TEST(StateVars, LoopCounterAndAccumulatorFound)
{
    auto svs = stateVarsOf(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + i;
            }
            return s;
        })");
    // i and s both carry state across iterations.
    EXPECT_EQ(svs.size(), 2u);
    for (const StateVar &sv : svs) {
        EXPECT_EQ(sv.phi->opcode(), Opcode::Phi);
        EXPECT_EQ(sv.updateEdges.size(), 1u);
        EXPECT_TRUE(sv.loop->contains(
            sv.phi->incomingBlock(sv.updateEdges[0])));
    }
}

TEST(StateVars, StraightLineHasNone)
{
    auto svs = stateVarsOf(R"(
        fn main(a: i32, b: i32) -> i32 {
            var c: i32 = a + b;
            if (c > 10) {
                c = c - 10;
            }
            return c;
        })");
    EXPECT_TRUE(svs.empty());
}

TEST(StateVars, IfMergePhiIsNotStateVariable)
{
    // Loop-invariant value merged by an if inside a loop: the if-join
    // phi is not in the loop header, so it is not a state variable.
    auto svs = stateVarsOf(R"(
        fn main(n: i32) -> i32 {
            var last: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                var t: i32 = 0;
                if (i > 5) {
                    t = 2;
                } else {
                    t = 3;
                }
                last = t;
            }
            return last;
        })");
    for (const StateVar &sv : svs) {
        // Every reported phi must live in a loop header.
        EXPECT_EQ(sv.loop->header, sv.phi->parent());
    }
}

TEST(StateVars, NestedLoopsBothReported)
{
    auto svs = stateVarsOf(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                for (var j: i32 = 0; j < 4; j = j + 1) {
                    s = s + j;
                }
            }
            return s;
        })");
    // i (outer), j (inner), s (both headers: outer phi + inner phi).
    EXPECT_GE(svs.size(), 3u);
}

TEST(StateVars, CrcLoopFromPaperFig3)
{
    // The paper's motivating example: crc and len are state variables.
    auto svs = stateVarsOf(R"(
        const CRC_TAB: i32[4] = [0, 1, 2, 3];
        fn main(data: ptr<i32>, len: i32) -> i32 {
            var crc: i32 = 123;
            var pos: i32 = 0;
            while (len >= 32) {
                var d: i32 = data[pos];
                var tv: i32 = CRC_TAB[(d >> 24) & 3];
                crc = (crc << 8) ^ tv;
                pos = pos + 1;
                len = len - 32;
            }
            return crc;
        })");
    // crc, pos, len all carry loop state.
    EXPECT_EQ(svs.size(), 3u);
}

} // namespace
} // namespace softcheck
