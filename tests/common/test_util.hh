/**
 * @file
 * Shared helpers for the test suite: compile-and-run MiniLang sources,
 * build tiny IR functions by hand, and express raw values.
 */

#ifndef SOFTCHECK_TESTS_COMMON_TEST_UTIL_HH
#define SOFTCHECK_TESTS_COMMON_TEST_UTIL_HH

#include <bit>
#include <memory>
#include <string>
#include <vector>

#include "frontend/compile.hh"
#include "interp/interpreter.hh"
#include "ir/irbuilder.hh"

namespace softcheck::testutil
{

inline uint64_t
f64Bits(double v)
{
    return std::bit_cast<uint64_t>(v);
}

inline double
bitsF64(uint64_t v)
{
    return std::bit_cast<double>(v);
}

/** Compile a MiniLang source and run @p fn with raw args. */
inline RunResult
runSource(const std::string &src, const std::string &fn,
          const std::vector<uint64_t> &args, Memory &mem,
          const ExecOptions &opts = {})
{
    auto mod = compileMiniLang(src, "test");
    ExecModule em(*mod);
    Interpreter interp(em, mem);
    return interp.run(em.functionIndex(fn), args, opts);
}

/** Compile + run a no-pointer-arg function; return its i32/i64 result
 * as signed. */
inline int64_t
evalInt(const std::string &src, const std::string &fn,
        const std::vector<uint64_t> &args = {})
{
    Memory mem;
    RunResult r = runSource(src, fn, args, mem);
    if (r.term != Termination::Ok)
        scPanic("evalInt: run did not complete");
    return static_cast<int64_t>(r.retValue);
}

/** Wrap a single-expression body into `fn main() -> i32`. */
inline int64_t
evalExprI32(const std::string &expr)
{
    return static_cast<int32_t>(
        evalInt("fn main() -> i32 { return " + expr + "; }", "main"));
}

} // namespace softcheck::testutil

#endif // SOFTCHECK_TESTS_COMMON_TEST_UTIL_HH
