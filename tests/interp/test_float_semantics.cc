#include <gtest/gtest.h>

#include <cmath>

#include "common/test_util.hh"

namespace softcheck
{
namespace
{

using testutil::bitsF64;
using testutil::f64Bits;
using testutil::runSource;

double
evalF64(const std::string &body, std::vector<uint64_t> args = {},
        const std::string &params = "")
{
    Memory mem;
    auto r = runSource(
        "fn main(" + params + ") -> f64 { return " + body + "; }",
        "main", std::move(args), mem);
    EXPECT_EQ(r.term, Termination::Ok);
    return bitsF64(r.retValue);
}

TEST(FloatSemantics, BasicOps)
{
    EXPECT_DOUBLE_EQ(evalF64("1.5 + 2.25"), 3.75);
    EXPECT_DOUBLE_EQ(evalF64("1.0 / 3.0"), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(evalF64("2.0 - 5.5"), -3.5);
}

TEST(FloatSemantics, DivisionByZeroIsInfNotTrap)
{
    // IEEE semantics: float division never traps.
    EXPECT_TRUE(std::isinf(evalF64("1.0 / 0.0")));
    EXPECT_TRUE(std::isnan(evalF64("0.0 / 0.0")));
}

TEST(FloatSemantics, NanComparesOrderedFalse)
{
    const int64_t v = testutil::evalInt(R"(
        fn main() -> i32 {
            var nan: f64 = 0.0 / 0.0;
            var c: i32 = 0;
            if (nan < 1.0) { c = c + 1; }
            if (nan > 1.0) { c = c + 2; }
            if (nan == nan) { c = c + 4; }
            if (nan != nan) { c = c + 8; }
            return c;
        })", "main");
    // Ordered predicates are all false on NaN; 'one' (ordered-ne) too.
    EXPECT_EQ(v, 0);
}

TEST(FloatSemantics, MathIntrinsicsMatchHost)
{
    EXPECT_DOUBLE_EQ(evalF64("exp(1.0)"), std::exp(1.0));
    EXPECT_DOUBLE_EQ(evalF64("log(10.0)"), std::log(10.0));
    EXPECT_DOUBLE_EQ(evalF64("sin(0.5)"), std::sin(0.5));
    EXPECT_DOUBLE_EQ(evalF64("cos(0.5)"), std::cos(0.5));
    EXPECT_DOUBLE_EQ(evalF64("sqrt(2.0)"), std::sqrt(2.0));
}

TEST(FloatSemantics, ArgumentPassing)
{
    EXPECT_DOUBLE_EQ(
        evalF64("a * b", {f64Bits(2.5), f64Bits(4.0)},
                "a: f64, b: f64"),
        10.0);
}

TEST(FloatSemantics, IntFloatRoundTrips)
{
    const int64_t v = testutil::evalInt(R"(
        fn main(x: i32) -> i32 {
            return i32(f64(x) * 2.0 + 0.5);
        })", "main", {21});
    EXPECT_EQ(v, 42);
}

TEST(FloatSemantics, F64MemoryRoundTrip)
{
    Memory mem;
    const uint64_t buf = mem.alloc(8 * 4);
    mem.write(buf, 8, f64Bits(3.14159));
    auto r = runSource(R"(
        fn main(p: ptr<f64>) -> f64 {
            p[1] = p[0] * 2.0;
            return p[1];
        })", "main", {buf}, mem);
    EXPECT_DOUBLE_EQ(bitsF64(r.retValue), 6.28318);
    uint64_t stored = 0;
    mem.read(buf + 8, 8, stored);
    EXPECT_DOUBLE_EQ(bitsF64(stored), 6.28318);
}

TEST(FloatSemantics, DoubleAccumulationDeterministic)
{
    const char *src = R"(
        fn main(n: i32) -> f64 {
            var acc: f64 = 0.0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                acc = acc + sin(f64(i) * 0.1) * cos(f64(i) * 0.05);
            }
            return acc;
        })";
    Memory m1, m2;
    auto a = runSource(src, "main", {500}, m1);
    auto b = runSource(src, "main", {500}, m2);
    EXPECT_EQ(a.retValue, b.retValue); // bit-identical
}

TEST(CheckSemantics, CheckOneOnFloats)
{
    Module m("t");
    Function *f = m.createFunction("main", Type::voidTy());
    Argument *x = f->addArg(Type::f64(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    b.createCheckOne(x, m.getConstFloat(Type::f64(), 2.5), 0);
    b.createRet();
    ExecModule em(m);
    Memory mem;
    Interpreter interp(em, mem);
    EXPECT_EQ(interp.run(0, {f64Bits(2.5)}, {}).term, Termination::Ok);
    EXPECT_EQ(interp.run(0, {f64Bits(2.4)}, {}).term,
              Termination::CheckFailed);
}

TEST(CheckSemantics, CheckTwoMatchesEitherValue)
{
    Module m("t");
    Function *f = m.createFunction("main", Type::voidTy());
    Argument *x = f->addArg(Type::i32(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    b.createCheckTwo(x, m.getConstInt(Type::i32(), int64_t{3}),
                     m.getConstInt(Type::i32(), int64_t{7}), 0);
    b.createRet();
    ExecModule em(m);
    Memory mem;
    Interpreter interp(em, mem);
    EXPECT_EQ(interp.run(0, {3}, {}).term, Termination::Ok);
    EXPECT_EQ(interp.run(0, {7}, {}).term, Termination::Ok);
    EXPECT_EQ(interp.run(0, {5}, {}).term, Termination::CheckFailed);
}

TEST(CheckSemantics, FloatRangeCheck)
{
    Module m("t");
    Function *f = m.createFunction("main", Type::voidTy());
    Argument *x = f->addArg(Type::f64(), "x");
    IRBuilder b(m);
    b.setInsertPoint(f->addBlock("entry"));
    b.createCheckRange(x, m.getConstFloat(Type::f64(), -1.5),
                       m.getConstFloat(Type::f64(), 1.5), 0);
    b.createRet();
    ExecModule em(m);
    Memory mem;
    Interpreter interp(em, mem);
    EXPECT_EQ(interp.run(0, {f64Bits(0.0)}, {}).term, Termination::Ok);
    EXPECT_EQ(interp.run(0, {f64Bits(1.5)}, {}).term, Termination::Ok);
    EXPECT_EQ(interp.run(0, {f64Bits(2.0)}, {}).term,
              Termination::CheckFailed);
    // NaN is outside every range: the check fires.
    EXPECT_EQ(interp.run(0, {f64Bits(std::nan(""))}, {}).term,
              Termination::CheckFailed);
}

} // namespace
} // namespace softcheck
