#include <gtest/gtest.h>

#include "common/test_util.hh"

namespace softcheck
{
namespace
{

/**
 * Kernel with everything a snapshot must capture: nested loops with
 * data-dependent branches (branch-predictor state), loads/stores over a
 * caller buffer (cache + Memory state), local arrays (allocas), a
 * helper call (multi-frame stacks), and f64 math (long-latency stalls).
 */
const char *kKernelSrc = R"(
fn mix(a: i32, b: i32) -> i32 {
    var acc: i32 = a * 31 + b;
    if (acc < 0) {
        acc = -acc;
    }
    return acc % 8191;
}

fn main(out: ptr<i32>, n: i32) -> i32 {
    var tmp: i32[64];
    var acc: i32 = 1;
    var f: f64 = 1.0;
    for (var i: i32 = 0; i < n; i = i + 1) {
        tmp[i % 64] = mix(acc, i);
        acc = acc + tmp[i % 64];
        if (acc % 3 == 0) {
            f = f + sqrt(f64(i) + 1.0);
        }
        out[i % 32] = acc + i32(f);
    }
    var sum: i32 = 0;
    for (var i: i32 = 0; i < 32; i = i + 1) {
        sum = sum + out[i];
    }
    return sum;
}
)";

struct Prep
{
    Memory mem;
    uint64_t outBase = 0;
    std::vector<uint64_t> args;
};

Prep
prep()
{
    Prep p;
    p.outBase = p.mem.alloc(32 * 4, "out");
    p.args = {p.outBase, 200};
    return p;
}

struct Compiled
{
    std::unique_ptr<Module> mod;
    std::unique_ptr<ExecModule> em;
    std::size_t entry = 0;
};

Compiled
compiled()
{
    Compiled c;
    c.mod = compileMiniLang(kKernelSrc, "ckpt_test");
    c.em = std::make_unique<ExecModule>(*c.mod);
    c.entry = c.em->functionIndex("main");
    return c;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.term, b.term);
    EXPECT_EQ(a.trap, b.trap);
    EXPECT_EQ(a.failedCheckId, b.failedCheckId);
    EXPECT_EQ(a.retValue, b.retValue);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.endCycle, b.endCycle);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.fault.injected, b.fault.injected);
    EXPECT_EQ(a.fault.slot, b.fault.slot);
    EXPECT_EQ(a.fault.slotType, b.fault.slotType);
    EXPECT_EQ(a.fault.bit, b.fault.bit);
    EXPECT_EQ(a.fault.before, b.fault.before);
    EXPECT_EQ(a.fault.after, b.fault.after);
    EXPECT_EQ(a.fault.atDynInstr, b.fault.atDynInstr);
    EXPECT_EQ(a.fault.atCycle, b.fault.atCycle);
}

TEST(Checkpoint, RunEqualsBeginPlusResume)
{
    auto c = compiled();
    auto p1 = prep();
    Interpreter i1(*c.em, p1.mem);
    const RunResult a = i1.run(c.entry, p1.args, {});

    auto p2 = prep();
    Interpreter i2(*c.em, p2.mem);
    ExecState st;
    i2.begin(st, c.entry, p2.args, CostConfig{});
    const RunResult b = i2.resume(st, {});

    expectSameResult(a, b);
    EXPECT_TRUE(p1.mem.contentsEqual(p2.mem));
}

TEST(Checkpoint, SnapshotsSitOnStrideBoundaries)
{
    auto c = compiled();
    auto p = prep();
    std::vector<Snapshot> snaps;
    ExecOptions opts;
    opts.checkpointEvery = 1000;
    opts.checkpointSink = &snaps;
    Interpreter interp(*c.em, p.mem);
    const RunResult r = interp.run(c.entry, p.args, opts);
    ASSERT_TRUE(r.ok());
    ASSERT_GT(r.dynInstrs, 3000u);
    ASSERT_EQ(snaps.size(), (r.dynInstrs - 1) / 1000);
    for (std::size_t i = 0; i < snaps.size(); ++i)
        EXPECT_EQ(snaps[i].dynInstr(), (i + 1) * 1000u);
}

/** An explicit checkpoint schedule records at exactly its points, and
 * the snapshots are bit-identical to the matching candidates of a
 * periodic recording pass (what the campaign's placement thinning
 * relies on). */
TEST(Checkpoint, ScheduleRecordsExactlyAtItsPoints)
{
    auto c = compiled();

    auto pp = prep();
    std::vector<Snapshot> periodic;
    ExecOptions rec;
    rec.checkpointEvery = 250;
    rec.checkpointSink = &periodic;
    Interpreter pi(*c.em, pp.mem);
    const RunResult golden = pi.run(c.entry, pp.args, rec);
    ASSERT_TRUE(golden.ok());
    ASSERT_GE(periodic.size(), 8u);

    // An irregular subset of the periodic grid plus off-grid points.
    const std::vector<uint64_t> schedule = {250, 750, 1111, 1500, 2003};
    auto ps = prep();
    std::vector<Snapshot> scheduled;
    ExecOptions srec;
    srec.checkpointSchedule = &schedule;
    srec.checkpointSink = &scheduled;
    Interpreter si(*c.em, ps.mem);
    const RunResult r = si.run(c.entry, ps.args, srec);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.dynInstrs, golden.dynInstrs);
    ASSERT_EQ(scheduled.size(), schedule.size());
    for (std::size_t i = 0; i < schedule.size(); ++i)
        EXPECT_EQ(scheduled[i].dynInstr(), schedule[i]);

    // Grid-aligned schedule points must capture the exact state the
    // periodic pass captured there.
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        if (schedule[i] % 250 != 0)
            continue;
        const Snapshot &p = periodic[schedule[i] / 250 - 1];
        EXPECT_TRUE(
            scheduled[i].convergedWith(p.state, p.mem))
            << "schedule point " << schedule[i];
    }
}

/** Past-the-end schedule entries (beyond the run length) are simply
 * never reached, and entries at or before a resumed state's dynCount
 * are skipped — no snapshot is recorded retroactively. */
TEST(Checkpoint, ScheduleSkipsPastAndStaleEntries)
{
    auto c = compiled();

    auto gp = prep();
    std::vector<Snapshot> snaps;
    ExecOptions rec;
    rec.checkpointEvery = 1000;
    rec.checkpointSink = &snaps;
    Interpreter grec(*c.em, gp.mem);
    const RunResult golden = grec.run(c.entry, gp.args, rec);
    ASSERT_TRUE(golden.ok());
    ASSERT_GE(snaps.size(), 2u);

    // Resume from snapshot 1 (dyn 2000) with a schedule whose first
    // two entries are stale and whose last is past the run end.
    const std::vector<uint64_t> schedule = {
        500, 2000, 2500, golden.dynInstrs + 1000};
    auto p = prep();
    std::vector<Snapshot> rec2;
    ExecOptions sopts;
    sopts.checkpointSchedule = &schedule;
    sopts.checkpointSink = &rec2;
    Interpreter interp(*c.em, p.mem);
    ExecState st;
    snaps[1].restore(st, p.mem);
    const RunResult r = interp.resume(st, sopts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.dynInstrs, golden.dynInstrs);
    ASSERT_EQ(rec2.size(), 1u);
    EXPECT_EQ(rec2[0].dynInstr(), 2500u);
}

/** A trial resumed from the nearest snapshot must be bit-identical to
 * the same trial replayed from dynamic instruction 0. */
TEST(Checkpoint, ResumedTrialBitwiseEqualsFullReplay)
{
    auto c = compiled();

    // Record snapshots on a fault-free run.
    auto gp = prep();
    std::vector<Snapshot> snaps;
    const uint64_t stride = 1000;
    ExecOptions rec;
    rec.checkpointEvery = stride;
    rec.checkpointSink = &snaps;
    Interpreter grec(*c.em, gp.mem);
    const RunResult golden = grec.run(c.entry, gp.args, rec);
    ASSERT_TRUE(golden.ok());
    ASSERT_GE(snaps.size(), 3u);

    const uint64_t fault_points[] = {1,
                                     stride - 1,
                                     stride,
                                     stride + 7,
                                     2 * stride + 123,
                                     3 * stride,
                                     golden.dynInstrs - 2};
    for (const uint64_t fault_at : fault_points) {
        for (const uint64_t seed : {1ULL, 42ULL, 0xdeadULL}) {
            ExecOptions opts;
            opts.faultAtDynInstr = fault_at;

            // Full replay.
            auto pa = prep();
            Rng ra(seed);
            opts.faultRng = &ra;
            Interpreter ia(*c.em, pa.mem);
            const RunResult a = ia.run(c.entry, pa.args, opts);

            // Fast-forward from the nearest snapshot at or before.
            auto pb = prep();
            Rng rb(seed);
            opts.faultRng = &rb;
            Interpreter ib(*c.em, pb.mem);
            ExecState st;
            if (fault_at >= stride) {
                std::size_t idx = static_cast<std::size_t>(
                                      fault_at / stride) -
                                  1;
                idx = std::min(idx, snaps.size() - 1);
                snaps[idx].restore(st, pb.mem);
            } else {
                ib.begin(st, c.entry, pb.args, opts.cost);
            }
            const RunResult b = ib.resume(st, opts);

            SCOPED_TRACE(testing::Message()
                         << "fault_at=" << fault_at << " seed=" << seed);
            expectSameResult(a, b);
            EXPECT_TRUE(a.fault.injected);
            if (a.term == Termination::Ok) {
                EXPECT_TRUE(pa.mem.contentsEqual(pb.mem));
            }
        }
    }
}

/** Golden-convergence pruning: when it fires, the early result must
 * match the full replay's result bit for bit (except the flag). */
TEST(Checkpoint, PrunedResultMatchesFullReplay)
{
    auto c = compiled();

    auto gp = prep();
    std::vector<Snapshot> snaps;
    const uint64_t stride = 500;
    ExecOptions rec;
    rec.checkpointEvery = stride;
    rec.checkpointSink = &snaps;
    Interpreter grec(*c.em, gp.mem);
    const RunResult golden = grec.run(c.entry, gp.args, rec);
    ASSERT_TRUE(golden.ok());

    unsigned pruned = 0, total = 0;
    for (uint64_t seed = 0; seed < 40; ++seed) {
        Rng pick(seed * 977 + 3);
        const uint64_t fault_at = pick.nextBelow(golden.dynInstrs);

        ExecOptions opts;
        opts.faultAtDynInstr = fault_at;

        auto pa = prep();
        Rng ra(seed);
        opts.faultRng = &ra;
        Interpreter ia(*c.em, pa.mem);
        const RunResult a = ia.run(c.entry, pa.args, opts);

        ExecOptions popts = opts;
        popts.goldenSnapshots = &snaps;
        popts.goldenResult = &golden;
        auto pb = prep();
        Rng rb(seed);
        popts.faultRng = &rb;
        Interpreter ib(*c.em, pb.mem);
        const RunResult b = ib.run(c.entry, pb.args, popts);

        SCOPED_TRACE(testing::Message()
                     << "fault_at=" << fault_at << " seed=" << seed);
        expectSameResult(a, b);
        ++total;
        if (b.prunedToGolden) {
            ++pruned;
            // Pruning may only ever declare a truly masked trial.
            EXPECT_EQ(a.term, Termination::Ok);
            EXPECT_EQ(a.retValue, golden.retValue);
            EXPECT_EQ(a.cycles, golden.cycles);
        }
    }
    // The kernel overwrites most corrupted state quickly, so a healthy
    // fraction of trials must actually exercise the pruning path.
    EXPECT_GT(pruned, 5u);
    EXPECT_EQ(total, 40u);
}

} // namespace
} // namespace softcheck
