/**
 * @file
 * Differential tests proving the direct-threaded tier (threaded_exec)
 * is bit-identical to the reference interpreter: same termination,
 * same register files and recent-write rings, same memory contents,
 * and the same complete cost-model state — under plain runs, fault
 * injection, checkpoint recording, golden-convergence pruning, and
 * tight timeouts, across hardening modes, on fixed kernels and on
 * randomly generated MiniLang programs.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/test_util.hh"
#include "core/pipeline.hh"
#include "interp/threaded_exec.hh"
#include "support/rng.hh"

namespace softcheck
{
namespace
{

/** Same kernel as test_checkpoint.cc: nested loops, data-dependent
 * branches, caller buffer, local arrays, a helper call, f64 math. */
const char *kMixKernel = R"(
fn mix(a: i32, b: i32) -> i32 {
    var acc: i32 = a * 31 + b;
    if (acc < 0) {
        acc = -acc;
    }
    return acc % 8191;
}

fn main(out: ptr<i32>, n: i32) -> i32 {
    var tmp: i32[64];
    var acc: i32 = 1;
    var f: f64 = 1.0;
    for (var i: i32 = 0; i < n; i = i + 1) {
        tmp[i % 64] = mix(acc, i);
        acc = acc + tmp[i % 64];
        if (acc % 3 == 0) {
            f = f + sqrt(f64(i) + 1.0);
        }
        out[i % 32] = acc + i32(f);
    }
    var sum: i32 = 0;
    for (var i: i32 = 0; i < 32; i = i + 1) {
        sum = sum + out[i];
    }
    return sum;
}
)";

/** Exercises the handlers kMixKernel misses: f32 arithmetic and
 * comparisons, narrow integer widths, shifts/bitwise ops, unsigned
 * division, select-shaped conditionals, fmin/fmax, and the full
 * transcendental set. */
const char *kWideKernel = R"(
fn main(out: ptr<i32>, n: i32) -> i32 {
    var s: f32 = 1.5;
    var acc: i64 = 7;
    var small: i16 = 3;
    for (var i: i32 = 0; i < n; i = i + 1) {
        s = s * f32(1.0009765625) + f32(i % 5);
        if (s > f32(1000.0)) {
            s = s - f32(999.5);
        }
        small = i16(i + small * 3);
        var x: i32 = ((i << 3) ^ (i >> 1)) | (i & 85);
        acc = acc + i64(x) * 3 + i64(small);
        if (i % 7 == 0) {
            var d: f64 = fmin(exp(f64(i % 11) * 0.25),
                              fmax(log(f64(i) + 2.0), 1.0));
            d = d + sin(f64(i) * 0.125) * cos(f64(i) * 0.0625);
            acc = acc + i64(d * 16.0);
        }
        out[i % 16] = i32(acc % 100003) + i32(s);
    }
    var sum: i32 = 0;
    var m: i32 = n;
    while (m > 0) {
        m = m - 1;
        sum = sum + out[m % 16] / (m + 1);
    }
    return sum;
}
)";

struct TestModule
{
    std::unique_ptr<Module> mod;
    std::unique_ptr<ExecModule> em;
    std::unique_ptr<ThreadedModule> tm;
    std::size_t entry = 0;
};

TestModule
build(const char *src, HardeningMode mode)
{
    TestModule t;
    t.mod = compileMiniLang(src, "tier_equiv");
    if (mode != HardeningMode::Original) {
        HardeningOptions h;
        h.mode = mode;
        hardenModule(*t.mod, h);
    }
    t.em = std::make_unique<ExecModule>(*t.mod);
    t.tm = std::make_unique<ThreadedModule>(*t.em);
    t.entry = t.em->functionIndex("main");
    return t;
}

struct Prep
{
    Memory mem;
    std::vector<uint64_t> args;
};

Prep
prep(int n)
{
    Prep p;
    const uint64_t out = p.mem.alloc(64 * 4, "out");
    p.args = {out, static_cast<uint64_t>(n)};
    return p;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.term, b.term);
    EXPECT_EQ(a.trap, b.trap);
    EXPECT_EQ(a.failedCheckId, b.failedCheckId);
    EXPECT_EQ(a.retValue, b.retValue);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.endCycle, b.endCycle);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.checkEvals, b.checkEvals);
    EXPECT_EQ(a.prunedToGolden, b.prunedToGolden);
    EXPECT_EQ(a.fault.injected, b.fault.injected);
    EXPECT_EQ(a.fault.slot, b.fault.slot);
    EXPECT_EQ(a.fault.slotType, b.fault.slotType);
    EXPECT_EQ(a.fault.bit, b.fault.bit);
    EXPECT_EQ(a.fault.before, b.fault.before);
    EXPECT_EQ(a.fault.after, b.fault.after);
    EXPECT_EQ(a.fault.atDynInstr, b.fault.atDynInstr);
    EXPECT_EQ(a.fault.atCycle, b.fault.atCycle);
}

/** Full final-state equality, including the recent-write rings (their
 * valid prefix) — the rings feed fault-site selection, so a divergence
 * there would skew fault campaigns even with equal RunResults. */
void
expectSameState(const ExecState &a, const ExecState &b)
{
    EXPECT_EQ(a.dynCount, b.dynCount);
    EXPECT_TRUE(a.cost.sameState(b.cost));
    EXPECT_EQ(a.globalBases, b.globalBases);
    ASSERT_EQ(a.stack.size(), b.stack.size());
    for (std::size_t i = 0; i < a.stack.size(); ++i) {
        const ExecFrame &fa = a.stack[i];
        const ExecFrame &fb = b.stack[i];
        EXPECT_EQ(fa.fn, fb.fn);
        EXPECT_EQ(fa.regs, fb.regs);
        EXPECT_EQ(fa.allocaBases, fb.allocaBases);
        EXPECT_EQ(fa.ip, fb.ip);
        EXPECT_EQ(fa.curBlock, fb.curBlock);
        EXPECT_EQ(fa.retDst, fb.retDst);
        ASSERT_EQ(fa.recentCount, fb.recentCount);
        EXPECT_EQ(fa.recentPos, fb.recentPos);
        for (uint32_t r = 0; r < fa.recentCount; ++r)
            EXPECT_EQ(fa.recent[r], fb.recent[r]) << "ring slot " << r;
    }
}

/** Run @p t on both tiers with identical options (per-tier Rng clones
 * when injecting) and demand bit-identical everything. Returns the
 * interpreter-tier result. */
RunResult
runBoth(const TestModule &t, int n, ExecOptions opts,
        std::optional<uint64_t> fault_seed = std::nullopt)
{
    Prep pa = prep(n);
    Rng ra(fault_seed.value_or(0));
    if (fault_seed)
        opts.faultRng = &ra;
    Interpreter interp(*t.em, pa.mem);
    ExecState sa;
    interp.begin(sa, t.entry, pa.args, opts.cost);
    const RunResult a = interp.resume(sa, opts);

    Prep pb = prep(n);
    Rng rb(fault_seed.value_or(0));
    if (fault_seed)
        opts.faultRng = &rb;
    ThreadedExec texec(*t.tm, pb.mem);
    ExecState sb;
    texec.begin(sb, t.entry, pb.args, opts.cost);
    const RunResult b = texec.resume(sb, opts);

    expectSameResult(a, b);
    expectSameState(sa, sb);
    EXPECT_TRUE(pa.mem.contentsEqual(pb.mem));
    return a;
}

const HardeningMode kModes[] = {HardeningMode::Original,
                                HardeningMode::DupOnly,
                                HardeningMode::FullDup};

TEST(TierEquiv, TranslationFusesPairs)
{
    auto t = build(kMixKernel, HardeningMode::Original);
    EXPECT_GT(t.tm->fusedPairs(), 0u);
}

TEST(TierEquiv, PlainRunsMatchAcrossModes)
{
    for (const char *src : {kMixKernel, kWideKernel}) {
        for (HardeningMode mode : kModes) {
            SCOPED_TRACE(testing::Message()
                         << "mode=" << hardeningModeName(mode)
                         << " src=" << (src == kMixKernel ? "mix" : "wide"));
            auto t = build(src, mode);
            const RunResult r = runBoth(t, 300, {});
            EXPECT_EQ(r.term, Termination::Ok);
        }
    }
}

TEST(TierEquiv, TimeoutsCutAtTheSameInstruction)
{
    auto t = build(kMixKernel, HardeningMode::DupOnly);
    const RunResult full = runBoth(t, 200, {});
    ASSERT_TRUE(full.ok());
    // Timeouts landing mid-run, right before the end, and on the very
    // first instruction; odd values also land inside fused pairs.
    const uint64_t limits[] = {1,    2,    97,
                               1000, 1001, full.dynInstrs - 1,
                               full.dynInstrs};
    for (uint64_t lim : limits) {
        SCOPED_TRACE(testing::Message() << "maxDynInstrs=" << lim);
        ExecOptions opts;
        opts.maxDynInstrs = lim;
        const RunResult r = runBoth(t, 200, opts);
        if (lim < full.dynInstrs) {
            EXPECT_EQ(r.term, Termination::Timeout);
            EXPECT_EQ(r.dynInstrs, lim);
        } else {
            EXPECT_EQ(r.term, Termination::Ok);
        }
    }
}

TEST(TierEquiv, FaultInjectionDrawsTheSameFlip)
{
    for (HardeningMode mode : kModes) {
        auto t = build(kMixKernel, mode);
        const RunResult full = runBoth(t, 150, {});
        ASSERT_TRUE(full.ok());
        Rng pick(0xfa017ULL);
        for (int i = 0; i < 12; ++i) {
            const uint64_t at = pick.nextBelow(full.dynInstrs);
            SCOPED_TRACE(testing::Message()
                         << "mode=" << hardeningModeName(mode)
                         << " fault_at=" << at << " seed=" << i);
            ExecOptions opts;
            opts.faultAtDynInstr = at;
            const RunResult r = runBoth(t, 150, opts, 1000 + i);
            EXPECT_TRUE(r.fault.injected);
        }
    }
}

TEST(TierEquiv, CheckpointsCaptureIdenticalSnapshots)
{
    auto t = build(kWideKernel, HardeningMode::FullDup);
    const uint64_t stride = 700;

    Prep pa = prep(250);
    std::vector<Snapshot> sna;
    ExecOptions oa;
    oa.checkpointEvery = stride;
    oa.checkpointSink = &sna;
    Interpreter interp(*t.em, pa.mem);
    const RunResult a = interp.run(t.entry, pa.args, oa);

    Prep pb = prep(250);
    std::vector<Snapshot> snb;
    ExecOptions ob;
    ob.checkpointEvery = stride;
    ob.checkpointSink = &snb;
    ThreadedExec texec(*t.tm, pb.mem);
    const RunResult b = texec.run(t.entry, pb.args, ob);

    expectSameResult(a, b);
    ASSERT_TRUE(a.ok());
    ASSERT_EQ(sna.size(), snb.size());
    ASSERT_GE(sna.size(), 3u);
    for (std::size_t i = 0; i < sna.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "snapshot " << i);
        EXPECT_EQ(sna[i].dynInstr(), (i + 1) * stride);
        expectSameState(sna[i].state, snb[i].state);
        EXPECT_TRUE(sna[i].mem.contentsEqual(snb[i].mem));
    }
}

/** Threaded trials fast-forwarded from interpreter-recorded snapshots
 * (the campaign engine's exact pattern) must match interpreter trials,
 * including which trials prune to golden. */
TEST(TierEquiv, GoldenPruningAgreesFromSharedSnapshots)
{
    auto t = build(kMixKernel, HardeningMode::DupOnly);
    const uint64_t stride = 500;

    Prep gp = prep(200);
    std::vector<Snapshot> snaps;
    ExecOptions rec;
    rec.checkpointEvery = stride;
    rec.checkpointSink = &snaps;
    Interpreter grec(*t.em, gp.mem);
    const RunResult golden = grec.run(t.entry, gp.args, rec);
    ASSERT_TRUE(golden.ok());
    ASSERT_GE(snaps.size(), 2u);

    unsigned pruned = 0;
    for (uint64_t seed = 0; seed < 24; ++seed) {
        Rng pick(seed * 977 + 3);
        const uint64_t fault_at = pick.nextBelow(golden.dynInstrs);
        SCOPED_TRACE(testing::Message()
                     << "fault_at=" << fault_at << " seed=" << seed);

        ExecOptions opts;
        opts.faultAtDynInstr = fault_at;
        opts.goldenSnapshots = &snaps;
        opts.goldenResult = &golden;

        const auto resume_from_nearest =
            [&](ExecState &st, Memory &m, auto &engine, Rng &rng) {
                ExecOptions o = opts;
                o.faultRng = &rng;
                if (fault_at >= stride) {
                    std::size_t idx =
                        static_cast<std::size_t>(fault_at / stride) - 1;
                    idx = std::min(idx, snaps.size() - 1);
                    snaps[idx].restore(st, m);
                } else {
                    engine.begin(st, t.entry, gp.args, o.cost);
                }
                return engine.resume(st, o);
            };

        Prep pa = prep(200);
        Rng ra(seed);
        Interpreter interp(*t.em, pa.mem);
        ExecState sa;
        const RunResult a = resume_from_nearest(sa, pa.mem, interp, ra);

        Prep pb = prep(200);
        Rng rb(seed);
        ThreadedExec texec(*t.tm, pb.mem);
        ExecState sb;
        const RunResult b = resume_from_nearest(sb, pb.mem, texec, rb);

        expectSameResult(a, b);
        if (!a.prunedToGolden) {
            expectSameState(sa, sb);
            EXPECT_TRUE(pa.mem.contentsEqual(pb.mem));
        }
        pruned += a.prunedToGolden ? 1u : 0u;
    }
    EXPECT_GT(pruned, 0u);
}

/**
 * Random-program differential fuzzing. Programs are generated from a
 * loop-nest template with randomized operators, constants, types, and
 * control flow, so each one exercises a different handler mix and
 * different fusion sites. Division/remainder right-hand sides are
 * biased to sometimes be zero so trap paths get compared too.
 */
std::string
randomProgram(Rng &rng)
{
    static const char *const int_ops[] = {"+", "-", "*", "&", "|",
                                          "^", "%", "/"};
    static const char *const f64_fns[] = {"sqrt", "fabs", "exp",
                                          "log",  "sin",  "cos"};
    std::ostringstream os;

    const int helper_c = static_cast<int>(rng.nextRange(900, 1100));
    os << "fn helper(a: i32, b: i32) -> i32 {\n"
       << "    var r: i32 = a " << int_ops[rng.nextBelow(6)] << " b;\n"
       << "    if (r < 0) { r = -r; }\n"
       << "    return r % " << helper_c << ";\n"
       << "}\n";

    os << "fn main(out: ptr<i32>, n: i32) -> i32 {\n"
       << "    var buf: i32[" << rng.nextRange(8, 32) << "];\n"
       << "    var acc: i32 = " << rng.nextRange(1, 64) << ";\n"
       << "    var wide: i64 = " << rng.nextRange(0, 9) << ";\n"
       << "    var f: f64 = " << rng.nextRange(1, 4) << ".5;\n"
       << "    var g: f32 = 0.25;\n";
    os << "    for (var i: i32 = 0; i < n; i = i + 1) {\n";

    const unsigned stmts = 3 + static_cast<unsigned>(rng.nextBelow(5));
    for (unsigned s = 0; s < stmts; ++s) {
        switch (rng.nextBelow(7)) {
          case 0:
            os << "        acc = acc " << int_ops[rng.nextBelow(8)]
               << " (i + " << rng.nextRange(1, 97) << ");\n";
            break;
          case 1:
            os << "        buf[i % " << rng.nextRange(2, 8)
               << "] = helper(acc, i " << int_ops[rng.nextBelow(6)]
               << " " << rng.nextRange(1, 31) << ");\n";
            break;
          case 2:
            os << "        acc = acc + buf[(i + "
               << rng.nextRange(0, 7) << ") % "
               << rng.nextRange(2, 8) << "];\n";
            break;
          case 3:
            os << "        if (acc % " << rng.nextRange(2, 9) << " == "
               << rng.nextRange(0, 1) << ") {\n"
               << "            f = f + " << f64_fns[rng.nextBelow(6)]
               << "(f64(i % " << rng.nextRange(3, 19)
               << ") + 1.5);\n"
               << "        } else {\n"
               << "            g = g * f32(1.03125) + f32(i % 3);\n"
               << "        }\n";
            break;
          case 4:
            os << "        wide = wide + i64(acc "
               << int_ops[rng.nextBelow(6)] << " "
               << rng.nextRange(1, 255) << ") + i64(g);\n";
            break;
          case 5:
            os << "        acc = (acc << " << rng.nextRange(1, 3)
               << ") ^ (acc >> " << rng.nextRange(1, 5) << ");\n";
            break;
          default:
            // Denominator reaches zero on some iterations for some
            // generated constants — deliberate: traps must match too.
            os << "        acc = acc " << (rng.nextBelow(2) ? "/" : "%")
               << " ((i % " << rng.nextRange(2, 5) << ") + "
               << rng.nextRange(0, 1) << ");\n";
            break;
        }
    }
    os << "        out[i % 8] = acc + i32(f) + i32(wide % 1000);\n"
       << "    }\n"
       << "    var sum: i32 = 0;\n"
       << "    for (var i: i32 = 0; i < 8; i = i + 1) {\n"
       << "        sum = sum + out[i];\n"
       << "    }\n"
       << "    return sum + i32(f) + i32(g) + i32(wide % 65536);\n"
       << "}\n";
    return os.str();
}

TEST(TierEquiv, RandomProgramsMatchOnBothTiers)
{
    Rng gen(0x7e57f22eULL);
    for (int p = 0; p < 30; ++p) {
        const std::string src = randomProgram(gen);
        const HardeningMode mode =
            kModes[gen.nextBelow(std::size(kModes))];
        SCOPED_TRACE(testing::Message()
                     << "program " << p << " mode="
                     << hardeningModeName(mode) << "\n"
                     << src);
        auto t = build(src.c_str(), mode);
        const int n = static_cast<int>(gen.nextRange(40, 160));

        // Plain run (may trap; both tiers must trap identically).
        const RunResult r = runBoth(t, n, {});

        // One injected-fault run and one tight-timeout run per program.
        if (r.ok() && r.dynInstrs > 4) {
            Rng pick(gen.next());
            ExecOptions fopts;
            fopts.faultAtDynInstr = pick.nextBelow(r.dynInstrs);
            runBoth(t, n, fopts, gen.next());

            ExecOptions topts;
            topts.maxDynInstrs = 1 + pick.nextBelow(r.dynInstrs - 1);
            runBoth(t, n, topts);
        }
    }
}

} // namespace
} // namespace softcheck
