#include <gtest/gtest.h>

#include "interp/cost_model.hh"

namespace softcheck
{
namespace
{

TEST(CostModel, BaseCostIsInstrsOverIssueWidth)
{
    CostModel cm;
    for (int i = 0; i < 100; ++i)
        cm.onInstr(Opcode::Add);
    EXPECT_EQ(cm.instructions(), 100u);
    EXPECT_EQ(cm.cycles(), 50u); // issue width 2, no stalls
}

TEST(CostModel, DivideStalls)
{
    CostModel cm;
    cm.onInstr(Opcode::SDiv);
    EXPECT_EQ(cm.stallCycles(), CostConfig{}.divExtraCycles);
    cm.onInstr(Opcode::Sqrt);
    EXPECT_EQ(cm.stallCycles(),
              CostConfig{}.divExtraCycles + CostConfig{}.mathExtraCycles);
}

TEST(CostModel, CacheHitAfterMiss)
{
    CostModel cm;
    cm.onMemAccess(0x1000);
    EXPECT_EQ(cm.cacheMisses(), 1u);
    cm.onMemAccess(0x1000);
    cm.onMemAccess(0x1008); // same 64B line
    EXPECT_EQ(cm.cacheMisses(), 1u);
    cm.onMemAccess(0x2000); // different line
    EXPECT_EQ(cm.cacheMisses(), 2u);
}

TEST(CostModel, CacheConflictEviction)
{
    CostConfig cfg;
    CostModel cm(cfg);
    const unsigned sets =
        cfg.l1dSizeKB * 1024 / (cfg.lineBytes * cfg.l1dAssoc);
    const uint64_t stride =
        static_cast<uint64_t>(sets) * cfg.lineBytes;
    // Three lines mapping to the same set exceed 2-way associativity.
    cm.onMemAccess(0);
    cm.onMemAccess(stride);
    cm.onMemAccess(2 * stride);
    EXPECT_EQ(cm.cacheMisses(), 3u);
    cm.onMemAccess(0); // evicted by LRU
    EXPECT_EQ(cm.cacheMisses(), 4u);
}

TEST(CostModel, CacheLruKeepsHotLine)
{
    CostConfig cfg;
    CostModel cm(cfg);
    const unsigned sets =
        cfg.l1dSizeKB * 1024 / (cfg.lineBytes * cfg.l1dAssoc);
    const uint64_t stride =
        static_cast<uint64_t>(sets) * cfg.lineBytes;
    cm.onMemAccess(0);
    cm.onMemAccess(stride);
    cm.onMemAccess(0);          // refresh LRU for line 0
    cm.onMemAccess(2 * stride); // evicts 'stride', not 0
    cm.onMemAccess(0);
    EXPECT_EQ(cm.cacheMisses(), 3u);
}

TEST(CostModel, BranchPredictorLearnsBias)
{
    CostModel cm;
    const uint64_t site = 7;
    for (int i = 0; i < 100; ++i)
        cm.onBranch(site, true);
    // At most the first couple of mispredicts while the counter warms.
    EXPECT_LE(cm.branchMispredicts(), 2u);
}

TEST(CostModel, BranchPredictorAlternatingPattern)
{
    CostModel cm;
    for (int i = 0; i < 100; ++i)
        cm.onBranch(3, (i & 1) != 0);
    // Bimodal cannot learn alternation perfectly.
    EXPECT_GE(cm.branchMispredicts(), 40u);
}

TEST(CostModel, ConfigStringMentionsParameters)
{
    const std::string s = CostConfig{}.str();
    EXPECT_NE(s.find("32KB"), std::string::npos);
    EXPECT_NE(s.find("2-way"), std::string::npos);
    EXPECT_NE(s.find("issue width 2"), std::string::npos);
}

} // namespace
} // namespace softcheck
