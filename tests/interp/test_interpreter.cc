#include <gtest/gtest.h>

#include "common/test_util.hh"

namespace softcheck
{
namespace
{

using testutil::bitsF64;
using testutil::evalInt;
using testutil::f64Bits;
using testutil::runSource;

// ---- arithmetic edge semantics (parameterized sweep) ------------------

struct ArithCase
{
    const char *expr;
    int64_t want;
};

class ArithSemantics : public ::testing::TestWithParam<ArithCase>
{};

TEST_P(ArithSemantics, Evaluates)
{
    const ArithCase &c = GetParam();
    EXPECT_EQ(testutil::evalExprI32(c.expr), c.want) << c.expr;
}

INSTANTIATE_TEST_SUITE_P(
    EdgeCases, ArithSemantics,
    ::testing::Values(
        // Wrap-around
        ArithCase{"2147483647 + 1", -2147483648LL},
        ArithCase{"-2147483647 - 2", 2147483647LL},
        ArithCase{"65536 * 65536", 0},
        // Division corner: INT_MIN / -1 is defined (no trap)
        ArithCase{"(-2147483647 - 1) / -1", -2147483648LL},
        ArithCase{"(-2147483647 - 1) % -1", 0},
        // Shift count masking (hardware semantics)
        ArithCase{"1 << 32", 1},
        ArithCase{"1 << 33", 2},
        ArithCase{"(-2147483647 - 1) >> 31", -1},
        // Mixed-sign division truncates toward zero
        ArithCase{"7 / -2", -3},
        ArithCase{"-7 / 2", -3},
        ArithCase{"7 % -2", 1},
        ArithCase{"-7 % 2", -1},
        // Bit ops on negative values
        ArithCase{"-1 & 255", 255},
        ArithCase{"-256 | 15", -241},
        ArithCase{"i32(i8(127) + i8(1))", -128},
        ArithCase{"i32(i16(32767) + i16(1))", -32768}));

TEST(Interp, FloatArithmetic)
{
    Memory mem;
    auto r = runSource(R"(
        fn main(a: f64, b: f64) -> f64 {
            return (a + b) * (a - b) / b;
        })", "main", {f64Bits(5.0), f64Bits(2.0)}, mem);
    EXPECT_DOUBLE_EQ(bitsF64(r.retValue), (7.0 * 3.0) / 2.0);
}

TEST(Interp, FloatToIntSaturates)
{
    // evalInt returns the canonical (zero-extended) register value;
    // reinterpret as i32 for signed expectations.
    auto eval_i32 = [](const char *src) {
        return static_cast<int32_t>(evalInt(src, "main"));
    };
    EXPECT_EQ(eval_i32("fn main() -> i32 { return i32(1.0e20); }"),
              2147483647);
    EXPECT_EQ(eval_i32("fn main() -> i32 { return i32(-1.0e20); }"),
              std::numeric_limits<int32_t>::min());
    EXPECT_EQ(eval_i32("fn main() -> i32 { return i32(sqrt(-1.0)); }"),
              0); // NaN -> 0
}

// ---- traps -------------------------------------------------------------

TEST(Interp, DivByZeroTraps)
{
    Memory mem;
    auto r = runSource(R"(
        fn main(a: i32) -> i32 {
            return 10 / a;
        })", "main", {0}, mem);
    EXPECT_EQ(r.term, Termination::Trap);
    EXPECT_EQ(r.trap, TrapKind::DivByZero);
}

TEST(Interp, OutOfBoundsLoadTraps)
{
    Memory mem;
    const uint64_t buf = mem.alloc(4 * 4);
    auto r = runSource(R"(
        fn main(p: ptr<i32>, i: i32) -> i32 {
            return p[i];
        })", "main", {buf, 1000000}, mem);
    EXPECT_EQ(r.term, Termination::Trap);
    EXPECT_EQ(r.trap, TrapKind::OutOfBounds);
}

TEST(Interp, TimeoutOnInfiniteLoop)
{
    Memory mem;
    ExecOptions opts;
    opts.maxDynInstrs = 10000;
    auto r = runSource(R"(
        fn main() -> i32 {
            var x: i32 = 0;
            while (true) {
                x = x + 1;
            }
            return x;
        })", "main", {}, mem, opts);
    EXPECT_EQ(r.term, Termination::Timeout);
    EXPECT_GE(r.dynInstrs, 10000u);
}

TEST(Interp, StackOverflowTraps)
{
    Memory mem;
    auto r = runSource(R"(
        fn rec(n: i32) -> i32 {
            return rec(n + 1);
        }
        fn main() -> i32 {
            return rec(0);
        })", "main", {}, mem);
    EXPECT_EQ(r.term, Termination::Trap);
    EXPECT_EQ(r.trap, TrapKind::StackOverflow);
}

// ---- checks --------------------------------------------------------------

/** Build a module with one range check via the builder. */
struct CheckedFn
{
    Module m{"t"};
    ExecModule *em = nullptr;
    std::unique_ptr<ExecModule> em_owner;

    CheckedFn(int64_t lo, int64_t hi)
    {
        Function *f = m.createFunction("main", Type::i32());
        Argument *x = f->addArg(Type::i32(), "x");
        auto *bb = f->addBlock("entry");
        IRBuilder b(m);
        b.setInsertPoint(bb);
        auto *v = b.createAdd(x, m.getConstInt(Type::i32(), int64_t{1}));
        b.createCheckRange(v, m.getConstInt(Type::i32(), lo),
                           m.getConstInt(Type::i32(), hi), 0);
        b.createRet(v);
        em_owner = std::make_unique<ExecModule>(m);
        em = em_owner.get();
    }

    RunResult
    run(int64_t x, const ExecOptions &opts = {})
    {
        Memory mem;
        Interpreter interp(*em, mem);
        return interp.run(0, {static_cast<uint64_t>(x)}, opts);
    }
};

TEST(Interp, RangeCheckPassesInside)
{
    CheckedFn fn(0, 100);
    auto r = fn.run(10);
    EXPECT_EQ(r.term, Termination::Ok);
    EXPECT_EQ(static_cast<int64_t>(r.retValue), 11);
}

TEST(Interp, RangeCheckFailsOutside)
{
    CheckedFn fn(0, 100);
    auto r = fn.run(1000);
    EXPECT_EQ(r.term, Termination::CheckFailed);
    EXPECT_EQ(r.failedCheckId, 0);
}

TEST(Interp, RangeCheckIsSigned)
{
    CheckedFn fn(-10, 10);
    EXPECT_EQ(fn.run(-5).term, Termination::Ok);
    EXPECT_EQ(fn.run(-50).term, Termination::CheckFailed);
}

TEST(Interp, DisabledCheckIsSkipped)
{
    CheckedFn fn(0, 100);
    std::vector<uint8_t> disabled{1};
    ExecOptions opts;
    opts.disabledChecks = &disabled;
    EXPECT_EQ(fn.run(1000, opts).term, Termination::Ok);
}

TEST(Interp, RecordModeCountsAndContinues)
{
    CheckedFn fn(0, 100);
    std::vector<uint64_t> counts(1, 0);
    ExecOptions opts;
    opts.checkMode = CheckMode::Record;
    opts.checkFailCounts = &counts;
    EXPECT_EQ(fn.run(1000, opts).term, Termination::Ok);
    EXPECT_EQ(counts[0], 1u);
}

// ---- fault injection -------------------------------------------------------

TEST(Interp, FaultInjectionIsDeterministic)
{
    const char *src = R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + i * 3;
            }
            return s;
        })";
    auto run_once = [&](uint64_t seed) {
        Memory mem;
        Rng rng(seed);
        ExecOptions opts;
        opts.faultAtDynInstr = 100;
        opts.faultRng = &rng;
        return runSource(src, "main", {50}, mem, opts);
    };
    auto a = run_once(1);
    auto b = run_once(1);
    EXPECT_EQ(a.term, b.term);
    EXPECT_EQ(a.retValue, b.retValue);
    EXPECT_EQ(a.fault.slot, b.fault.slot);
    EXPECT_EQ(a.fault.bit, b.fault.bit);
}

TEST(Interp, FaultRecordsFlip)
{
    Memory mem;
    Rng rng(3);
    ExecOptions opts;
    opts.faultAtDynInstr = 50;
    opts.faultRng = &rng;
    auto r = runSource(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + i;
            }
            return s;
        })", "main", {100}, mem, opts);
    EXPECT_TRUE(r.fault.injected);
    EXPECT_EQ(r.fault.atDynInstr, 50u);
    EXPECT_NE(r.fault.before, r.fault.after);
    // Exactly one bit differs.
    EXPECT_EQ(__builtin_popcountll(r.fault.before ^ r.fault.after), 1);
}

TEST(Interp, NoFaultPastProgramEnd)
{
    Memory mem;
    Rng rng(3);
    ExecOptions opts;
    opts.faultAtDynInstr = 1000000000; // beyond program length
    opts.faultRng = &rng;
    auto r = runSource("fn main() -> i32 { return 7; }", "main", {},
                       mem, opts);
    EXPECT_EQ(r.term, Termination::Ok);
    EXPECT_FALSE(r.fault.injected);
    EXPECT_EQ(static_cast<int64_t>(r.retValue), 7);
}

// ---- determinism / cycle accounting ------------------------------------

TEST(Interp, CyclesAreDeterministic)
{
    const char *src = R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + i / 3;
            }
            return s;
        })";
    Memory m1, m2;
    auto a = runSource(src, "main", {200}, m1);
    auto b = runSource(src, "main", {200}, m2);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_GT(a.cycles, a.dynInstrs / 2); // div stalls present
}

TEST(Interp, GlobalTablesMaterialized)
{
    const int64_t v = evalInt(R"(
        const T: i32[3] = [7, 8, 9];
        fn main() -> i32 {
            return T[0] + T[1] * T[2];
        })", "main");
    EXPECT_EQ(v, 79);
}

} // namespace
} // namespace softcheck
