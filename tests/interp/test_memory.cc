#include <gtest/gtest.h>

#include "interp/memory.hh"

namespace softcheck
{
namespace
{

TEST(Memory, AllocReadWriteRoundTrip)
{
    Memory mem;
    const uint64_t base = mem.alloc(64);
    EXPECT_TRUE(mem.write(base, 8, 0x1122334455667788ULL));
    uint64_t v = 0;
    EXPECT_TRUE(mem.read(base, 8, v));
    EXPECT_EQ(v, 0x1122334455667788ULL);
}

TEST(Memory, SmallAccessesAreZeroExtended)
{
    Memory mem;
    const uint64_t base = mem.alloc(16);
    EXPECT_TRUE(mem.write(base, 4, 0xDDCCBBAAu));
    uint64_t v = ~0ULL;
    EXPECT_TRUE(mem.read(base, 1, v));
    EXPECT_EQ(v, 0xAAu);
    EXPECT_TRUE(mem.read(base, 2, v));
    EXPECT_EQ(v, 0xBBAAu);
    EXPECT_TRUE(mem.read(base, 4, v));
    EXPECT_EQ(v, 0xDDCCBBAAu);
}

TEST(Memory, OutOfBoundsDetected)
{
    Memory mem;
    const uint64_t base = mem.alloc(16);
    uint64_t v;
    EXPECT_FALSE(mem.read(base + 16, 1, v));     // one past end
    EXPECT_FALSE(mem.read(base - 1, 1, v));      // before start
    EXPECT_FALSE(mem.read(base + 12, 8, v));     // straddles end
    EXPECT_FALSE(mem.write(base + 16, 4, 0));
    EXPECT_TRUE(mem.read(base + 15, 1, v));      // last byte OK
}

TEST(Memory, GuardGapBetweenRegions)
{
    Memory mem;
    const uint64_t a = mem.alloc(8);
    const uint64_t b = mem.alloc(8);
    EXPECT_GE(b, a + 8 + 64); // guard gap
    uint64_t v;
    EXPECT_FALSE(mem.read(a + 8, 8, v)); // gap is unmapped
}

TEST(Memory, WildAddressFails)
{
    Memory mem;
    mem.alloc(8);
    uint64_t v;
    EXPECT_FALSE(mem.read(0, 8, v));
    EXPECT_FALSE(mem.read(~0ULL - 4, 8, v));
}

TEST(Memory, FreeUnmapsRegion)
{
    Memory mem;
    const uint64_t a = mem.alloc(32);
    const uint64_t b = mem.alloc(32);
    mem.free(a);
    uint64_t v;
    EXPECT_FALSE(mem.read(a, 4, v));
    EXPECT_TRUE(mem.read(b, 4, v));
    EXPECT_EQ(mem.numRegions(), 1u);
}

TEST(Memory, ZeroInitialized)
{
    Memory mem;
    const uint64_t base = mem.alloc(32);
    uint64_t v = ~0ULL;
    EXPECT_TRUE(mem.read(base + 8, 8, v));
    EXPECT_EQ(v, 0u);
}

TEST(Memory, HostPtrBulkAccess)
{
    Memory mem;
    const uint64_t base = mem.alloc(16);
    uint8_t *p = mem.hostPtr(base, 16);
    ASSERT_NE(p, nullptr);
    p[3] = 0x7F;
    uint64_t v;
    EXPECT_TRUE(mem.read(base + 3, 1, v));
    EXPECT_EQ(v, 0x7Fu);
    EXPECT_EQ(mem.hostPtr(base, 17), nullptr);
}

TEST(Memory, ManyRegionsLookup)
{
    Memory mem;
    std::vector<uint64_t> bases;
    for (int i = 0; i < 50; ++i)
        bases.push_back(mem.alloc(16 + i));
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(mem.write(bases[static_cast<size_t>(i)], 4,
                              static_cast<uint64_t>(i)));
    }
    for (int i = 49; i >= 0; --i) {
        uint64_t v;
        EXPECT_TRUE(mem.read(bases[static_cast<size_t>(i)], 4, v));
        EXPECT_EQ(v, static_cast<uint64_t>(i));
    }
    EXPECT_GT(mem.bytesAllocated(), 50u * 16);
}

TEST(Memory, RestoreFromRewindsToSnapshot)
{
    Memory mem;
    const uint64_t a = mem.alloc(32, "a");
    EXPECT_TRUE(mem.write(a, 8, 0x1111));
    const Memory snapshot = mem;

    // Diverge: mutate, allocate, free.
    EXPECT_TRUE(mem.write(a, 8, 0x2222));
    const uint64_t b = mem.alloc(64, "b");
    EXPECT_TRUE(mem.write(b, 4, 7));
    EXPECT_FALSE(mem.contentsEqual(snapshot));

    mem.restoreFrom(snapshot);
    EXPECT_TRUE(mem.contentsEqual(snapshot));
    EXPECT_EQ(mem.numRegions(), 1u);
    uint64_t v = 0;
    EXPECT_TRUE(mem.read(a, 8, v));
    EXPECT_EQ(v, 0x1111u);
    // The allocation cursor rewinds too: the next alloc reproduces the
    // same deterministic address sequence.
    EXPECT_EQ(mem.alloc(64), b);
}

TEST(Memory, FreeThenReallocKeepsOrderingAndLookup)
{
    Memory mem;
    const uint64_t a = mem.alloc(32, "a");
    const uint64_t b = mem.alloc(32, "b");
    const uint64_t c = mem.alloc(32, "c");
    mem.free(b);
    // The allocation cursor never rewinds: a re-alloc lands above every
    // freed base, keeping the region vector sorted for binary search.
    const uint64_t d = mem.alloc(48, "d");
    EXPECT_GT(d, c);
    EXPECT_EQ(mem.numRegions(), 3u);
    EXPECT_TRUE(mem.write(a, 4, 1));
    EXPECT_TRUE(mem.write(c, 4, 3));
    EXPECT_TRUE(mem.write(d, 4, 4));
    uint64_t v;
    EXPECT_FALSE(mem.read(b, 4, v)); // freed gap stays unmapped
    EXPECT_TRUE(mem.read(a, 4, v));
    EXPECT_EQ(v, 1u);
    EXPECT_TRUE(mem.read(d, 4, v));
    EXPECT_EQ(v, 4u);
}

TEST(Memory, OutOfBoundsAtExactRegionBoundaries)
{
    Memory mem;
    const uint64_t base = mem.alloc(64);
    uint64_t v;
    // Last in-bounds span of every access width.
    for (const unsigned sz : {1u, 2u, 4u, 8u})
        EXPECT_TRUE(mem.read(base + 64 - sz, sz, v)) << sz;
    // One byte past the boundary, for every width.
    for (const unsigned sz : {1u, 2u, 4u, 8u})
        EXPECT_FALSE(mem.read(base + 64 - sz + 1, sz, v)) << sz;
    // First byte of the guard gap, and last byte before the region.
    EXPECT_FALSE(mem.write(base + 64, 1, 0));
    EXPECT_FALSE(mem.write(base - 1, 1, 0));
    EXPECT_TRUE(mem.write(base, 1, 0xFF));
}

TEST(Memory, HostPtrNullOnStraddlingSpans)
{
    Memory mem;
    const uint64_t a = mem.alloc(Memory::kPageSize * 2);
    const uint64_t b = mem.alloc(16);
    // Region-straddling: runs off the end of 'a' into the guard gap.
    EXPECT_EQ(mem.hostPtr(a + Memory::kPageSize * 2 - 4, 8), nullptr);
    // Page-straddling: in bounds, but pages are not contiguous in host
    // memory, so no single pointer can cover the span.
    EXPECT_EQ(mem.hostPtr(a + Memory::kPageSize - 4, 8), nullptr);
    // Within one page: fine, in both regions.
    EXPECT_NE(mem.hostPtr(a + Memory::kPageSize - 8, 8), nullptr);
    EXPECT_NE(mem.hostPtr(b, 16), nullptr);
    const Memory &cmem = mem;
    EXPECT_EQ(cmem.hostPtr(a + Memory::kPageSize - 4, 8), nullptr);
    EXPECT_NE(cmem.hostPtr(a + Memory::kPageSize, 8), nullptr);
}

TEST(Memory, PageStraddlingReadWriteRoundTrip)
{
    Memory mem;
    const uint64_t base = mem.alloc(Memory::kPageSize * 3);
    // 8-byte value split 4/4 across the first page boundary.
    const uint64_t addr = base + Memory::kPageSize - 4;
    EXPECT_TRUE(mem.write(addr, 8, 0x1122334455667788ULL));
    uint64_t v = 0;
    EXPECT_TRUE(mem.read(addr, 8, v));
    EXPECT_EQ(v, 0x1122334455667788ULL);
    // The halves landed at the right offsets in each page.
    EXPECT_TRUE(mem.read(addr, 4, v));
    EXPECT_EQ(v, 0x55667788u);
    EXPECT_TRUE(mem.read(base + Memory::kPageSize, 4, v));
    EXPECT_EQ(v, 0x11223344u);
    // 2-byte write split 1/1 across the second boundary.
    EXPECT_TRUE(mem.write(base + Memory::kPageSize * 2 - 1, 2, 0xBEEF));
    EXPECT_TRUE(mem.read(base + Memory::kPageSize * 2 - 1, 2, v));
    EXPECT_EQ(v, 0xBEEFu);
}

TEST(Memory, CowWriteAfterSnapshotDoesNotMutateSnapshot)
{
    Memory mem;
    const uint64_t base = mem.alloc(Memory::kPageSize * 2);
    EXPECT_TRUE(mem.write(base, 8, 0x1111));
    const Memory snapshot = mem; // shares pages copy-on-write

    EXPECT_TRUE(mem.write(base, 8, 0x2222));
    uint64_t v = 0;
    EXPECT_TRUE(snapshot.read(base, 8, v));
    EXPECT_EQ(v, 0x1111u) << "write-through mutated the snapshot";
    EXPECT_TRUE(mem.read(base, 8, v));
    EXPECT_EQ(v, 0x2222u);

    // And through the non-const hostPtr path, in the second page.
    const Memory snap2 = mem;
    uint8_t *p = mem.hostPtr(base + Memory::kPageSize, 4);
    ASSERT_NE(p, nullptr);
    p[0] = 0x7F;
    EXPECT_TRUE(snap2.read(base + Memory::kPageSize, 1, v));
    EXPECT_EQ(v, 0u);
}

TEST(Memory, CowRestoreDiscardsTrialDirt)
{
    Memory mem;
    const uint64_t base = mem.alloc(Memory::kPageSize * 4);
    EXPECT_TRUE(mem.write(base + 8, 8, 0xAAAA));
    const Memory snapshot = mem;
    EXPECT_EQ(mem.dirtyPageCount(), 0u); // sharing cleaned both sides

    // Dirty a few pages, then rewind.
    EXPECT_TRUE(mem.write(base, 8, 0xBBBB));
    EXPECT_TRUE(mem.write(base + Memory::kPageSize * 3, 8, 0xCCCC));
    EXPECT_EQ(mem.dirtyPageCount(), 2u);
    EXPECT_FALSE(mem.contentsEqual(snapshot));

    mem.restoreFrom(snapshot);
    EXPECT_EQ(mem.dirtyPageCount(), 0u);
    EXPECT_TRUE(mem.contentsEqual(snapshot));
    uint64_t v = 0;
    EXPECT_TRUE(mem.read(base, 8, v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(mem.read(base + 8, 8, v));
    EXPECT_EQ(v, 0xAAAAu);
}

TEST(Memory, SnapshotsShareUntouchedPages)
{
    Memory mem;
    const uint64_t base = mem.alloc(Memory::kPageSize * 8);
    for (unsigned p = 0; p < 8; ++p)
        EXPECT_TRUE(
            mem.write(base + p * Memory::kPageSize, 8, p + 1));

    const Memory snap_a = mem;
    EXPECT_TRUE(mem.write(base, 8, 99)); // dirty exactly one page
    const Memory snap_b = mem;

    std::unordered_set<const void *> seen;
    const uint64_t first = snap_a.accountPages(seen);
    EXPECT_EQ(first, 8 * Memory::kPageSize);
    // The second snapshot only adds its one diverged page.
    const uint64_t second = snap_b.accountPages(seen);
    EXPECT_EQ(second, Memory::kPageSize);
}

TEST(Memory, ContentsEqualComparesDataNotNames)
{
    Memory x, y;
    const uint64_t bx = x.alloc(16, "left");
    const uint64_t by = y.alloc(16, "right");
    ASSERT_EQ(bx, by);
    EXPECT_TRUE(x.contentsEqual(y));
    EXPECT_TRUE(x.write(bx, 4, 99));
    EXPECT_FALSE(x.contentsEqual(y));
    EXPECT_TRUE(y.write(by, 4, 99));
    EXPECT_TRUE(x.contentsEqual(y));
}

} // namespace
} // namespace softcheck
