#include <gtest/gtest.h>

#include "interp/memory.hh"

namespace softcheck
{
namespace
{

TEST(Memory, AllocReadWriteRoundTrip)
{
    Memory mem;
    const uint64_t base = mem.alloc(64);
    EXPECT_TRUE(mem.write(base, 8, 0x1122334455667788ULL));
    uint64_t v = 0;
    EXPECT_TRUE(mem.read(base, 8, v));
    EXPECT_EQ(v, 0x1122334455667788ULL);
}

TEST(Memory, SmallAccessesAreZeroExtended)
{
    Memory mem;
    const uint64_t base = mem.alloc(16);
    EXPECT_TRUE(mem.write(base, 4, 0xDDCCBBAAu));
    uint64_t v = ~0ULL;
    EXPECT_TRUE(mem.read(base, 1, v));
    EXPECT_EQ(v, 0xAAu);
    EXPECT_TRUE(mem.read(base, 2, v));
    EXPECT_EQ(v, 0xBBAAu);
    EXPECT_TRUE(mem.read(base, 4, v));
    EXPECT_EQ(v, 0xDDCCBBAAu);
}

TEST(Memory, OutOfBoundsDetected)
{
    Memory mem;
    const uint64_t base = mem.alloc(16);
    uint64_t v;
    EXPECT_FALSE(mem.read(base + 16, 1, v));     // one past end
    EXPECT_FALSE(mem.read(base - 1, 1, v));      // before start
    EXPECT_FALSE(mem.read(base + 12, 8, v));     // straddles end
    EXPECT_FALSE(mem.write(base + 16, 4, 0));
    EXPECT_TRUE(mem.read(base + 15, 1, v));      // last byte OK
}

TEST(Memory, GuardGapBetweenRegions)
{
    Memory mem;
    const uint64_t a = mem.alloc(8);
    const uint64_t b = mem.alloc(8);
    EXPECT_GE(b, a + 8 + 64); // guard gap
    uint64_t v;
    EXPECT_FALSE(mem.read(a + 8, 8, v)); // gap is unmapped
}

TEST(Memory, WildAddressFails)
{
    Memory mem;
    mem.alloc(8);
    uint64_t v;
    EXPECT_FALSE(mem.read(0, 8, v));
    EXPECT_FALSE(mem.read(~0ULL - 4, 8, v));
}

TEST(Memory, FreeUnmapsRegion)
{
    Memory mem;
    const uint64_t a = mem.alloc(32);
    const uint64_t b = mem.alloc(32);
    mem.free(a);
    uint64_t v;
    EXPECT_FALSE(mem.read(a, 4, v));
    EXPECT_TRUE(mem.read(b, 4, v));
    EXPECT_EQ(mem.numRegions(), 1u);
}

TEST(Memory, ZeroInitialized)
{
    Memory mem;
    const uint64_t base = mem.alloc(32);
    uint64_t v = ~0ULL;
    EXPECT_TRUE(mem.read(base + 8, 8, v));
    EXPECT_EQ(v, 0u);
}

TEST(Memory, HostPtrBulkAccess)
{
    Memory mem;
    const uint64_t base = mem.alloc(16);
    uint8_t *p = mem.hostPtr(base, 16);
    ASSERT_NE(p, nullptr);
    p[3] = 0x7F;
    uint64_t v;
    EXPECT_TRUE(mem.read(base + 3, 1, v));
    EXPECT_EQ(v, 0x7Fu);
    EXPECT_EQ(mem.hostPtr(base, 17), nullptr);
}

TEST(Memory, ManyRegionsLookup)
{
    Memory mem;
    std::vector<uint64_t> bases;
    for (int i = 0; i < 50; ++i)
        bases.push_back(mem.alloc(16 + i));
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(mem.write(bases[static_cast<size_t>(i)], 4,
                              static_cast<uint64_t>(i)));
    }
    for (int i = 49; i >= 0; --i) {
        uint64_t v;
        EXPECT_TRUE(mem.read(bases[static_cast<size_t>(i)], 4, v));
        EXPECT_EQ(v, static_cast<uint64_t>(i));
    }
    EXPECT_GT(mem.bytesAllocated(), 50u * 16);
}

TEST(Memory, RestoreFromRewindsToSnapshot)
{
    Memory mem;
    const uint64_t a = mem.alloc(32, "a");
    EXPECT_TRUE(mem.write(a, 8, 0x1111));
    const Memory snapshot = mem;

    // Diverge: mutate, allocate, free.
    EXPECT_TRUE(mem.write(a, 8, 0x2222));
    const uint64_t b = mem.alloc(64, "b");
    EXPECT_TRUE(mem.write(b, 4, 7));
    EXPECT_FALSE(mem.contentsEqual(snapshot));

    mem.restoreFrom(snapshot);
    EXPECT_TRUE(mem.contentsEqual(snapshot));
    EXPECT_EQ(mem.numRegions(), 1u);
    uint64_t v = 0;
    EXPECT_TRUE(mem.read(a, 8, v));
    EXPECT_EQ(v, 0x1111u);
    // The allocation cursor rewinds too: the next alloc reproduces the
    // same deterministic address sequence.
    EXPECT_EQ(mem.alloc(64), b);
}

TEST(Memory, ContentsEqualComparesDataNotNames)
{
    Memory x, y;
    const uint64_t bx = x.alloc(16, "left");
    const uint64_t by = y.alloc(16, "right");
    ASSERT_EQ(bx, by);
    EXPECT_TRUE(x.contentsEqual(y));
    EXPECT_TRUE(x.write(bx, 4, 99));
    EXPECT_FALSE(x.contentsEqual(y));
    EXPECT_TRUE(y.write(by, 4, 99));
    EXPECT_TRUE(x.contentsEqual(y));
}

} // namespace
} // namespace softcheck
