#include <gtest/gtest.h>

#include "common/test_util.hh"
#include "interp/exec_module.hh"
#include "profile/value_profiler.hh"

namespace softcheck
{
namespace
{

TEST(ExecModule, PhisBecomeEdgeMoves)
{
    auto mod = compileMiniLang(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + i;
            }
            return s;
        })", "t");
    ExecModule em(*mod);
    const ExecFunction &fn = em.function(em.functionIndex("main"));
    // No Phi opcode appears in the executable code stream.
    for (const ExecInst &inst : fn.code)
        EXPECT_NE(inst.op, Opcode::Phi);
    // The loop header block has per-edge phi move batches (entry +
    // latch edges).
    bool found_moves = false;
    for (const ExecBlock &bb : fn.blocks) {
        if (bb.phiIn.size() >= 2) {
            found_moves = true;
            for (const auto &[pred, moves] : bb.phiIn)
                EXPECT_FALSE(moves.empty());
        }
    }
    EXPECT_TRUE(found_moves);
}

TEST(ExecModule, SlotTypesCoverAllSlots)
{
    auto mod = compileMiniLang(R"(
        fn main(p: ptr<f64>, n: i32) -> f64 {
            var acc: f64 = 0.0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                acc = acc + p[i];
            }
            return acc;
        })", "t");
    ExecModule em(*mod);
    const ExecFunction &fn = em.function(em.functionIndex("main"));
    ASSERT_EQ(fn.slotTypes.size(), fn.numSlots);
    EXPECT_EQ(fn.slotTypes[0], TypeKind::Ptr); // arg p
    EXPECT_EQ(fn.slotTypes[1], TypeKind::I32); // arg n
    unsigned f64_slots = 0;
    for (TypeKind k : fn.slotTypes) {
        EXPECT_NE(k, TypeKind::Void);
        if (k == TypeKind::F64)
            ++f64_slots;
    }
    EXPECT_GE(f64_slots, 2u); // acc phi + load + fadd at least
}

TEST(ExecModule, ImmediateOperandsEncoded)
{
    auto mod = compileMiniLang(
        "fn main(a: i32) -> i32 { return a + 41; }", "t");
    ExecModule em(*mod);
    const ExecFunction &fn = em.function(0);
    bool found = false;
    for (const ExecInst &inst : fn.code) {
        if (inst.op == Opcode::Add) {
            EXPECT_GE(inst.a.slot, 0);
            EXPECT_EQ(inst.b.slot, -1);
            EXPECT_EQ(inst.b.imm, 41u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ExecModule, CountsChecksAndProfileSites)
{
    auto mod = compileMiniLang(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + i * 7;
            }
            return s;
        })", "t");
    const unsigned sites = assignProfileSites(*mod);
    ExecModule em(*mod);
    EXPECT_EQ(em.numProfileSites(), sites);
    EXPECT_EQ(em.numCheckIds(), 0u);
}

TEST(ExecModule, FunctionIndexLookup)
{
    auto mod = compileMiniLang(R"(
        fn helper(a: i32) -> i32 { return a; }
        fn main() -> i32 { return helper(3); }
    )", "t");
    ExecModule em(*mod);
    EXPECT_EQ(em.numFunctions(), 2u);
    EXPECT_NE(em.functionIndex("helper"), em.functionIndex("main"));
    EXPECT_THROW(em.functionIndex("nope"), FatalError);
}

TEST(ExecModule, CallArgsEncoded)
{
    auto mod = compileMiniLang(R"(
        fn f(a: i32, b: i32) -> i32 { return a - b; }
        fn main(x: i32) -> i32 { return f(x, 5); }
    )", "t");
    ExecModule em(*mod);
    const ExecFunction &fn = em.function(em.functionIndex("main"));
    bool found = false;
    for (const ExecInst &inst : fn.code) {
        if (inst.op == Opcode::Call) {
            EXPECT_EQ(inst.calleeIdx,
                      static_cast<int32_t>(em.functionIndex("f")));
            ASSERT_EQ(inst.callArgs.size(), 2u);
            EXPECT_GE(inst.callArgs[0].slot, 0);
            EXPECT_EQ(inst.callArgs[1].slot, -1);
            EXPECT_EQ(inst.callArgs[1].imm, 5u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ExecModule, GlobalsListedInOrder)
{
    auto mod = compileMiniLang(R"(
        const A: i32[2] = [1, 2];
        const B: i64[3] = [3, 4, 5];
        fn main() -> i32 { return A[0] + i32(B[0]); }
    )", "t");
    ExecModule em(*mod);
    ASSERT_EQ(em.globals().size(), 2u);
    EXPECT_EQ(em.globals()[0]->name(), "A");
    EXPECT_EQ(em.globals()[1]->name(), "B");
    EXPECT_EQ(em.globals()[1]->elementType(), Type::i64());
}

} // namespace
} // namespace softcheck
