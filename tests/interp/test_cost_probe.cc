/**
 * @file
 * Regression tests for the CostModel probe/update split the lockstep
 * tier relies on: probeMemAccess/probeBranch must be pure functions of
 * the configuration (so one probe computed on ANY model with the same
 * config can be fed to every lane's update), and probe+update must be
 * bit-identical to the fused onMemAccess/onBranch path.
 */

#include <gtest/gtest.h>

#include "interp/cost_model.hh"
#include "support/rng.hh"

namespace softcheck
{
namespace
{

TEST(CostProbe, ProbePlusUpdateEqualsFusedMemAccess)
{
    const CostConfig cfg;
    CostModel fused(cfg);
    CostModel split(cfg);
    // The probe is computed on a third model that never updates —
    // proving it depends on configuration only, not on mutable state.
    const CostModel oracle(cfg);

    Rng rng(0x90970be5ULL);
    for (int i = 0; i < 20000; ++i) {
        // Mix of hot lines (reuse) and cold strides (misses).
        const uint64_t addr = (i % 3 == 0)
                                  ? rng.nextBelow(4096)
                                  : rng.nextBelow(1ULL << 22);
        fused.onMemAccess(addr);
        split.updateMemAccess(oracle.probeMemAccess(addr));
        ASSERT_TRUE(fused.sameState(split)) << "diverged at access " << i;
    }
    EXPECT_GT(fused.cacheMisses(), 0u);
}

TEST(CostProbe, ProbePlusUpdateEqualsFusedBranch)
{
    const CostConfig cfg;
    CostModel fused(cfg);
    CostModel split(cfg);
    const CostModel oracle(cfg);

    Rng rng(0x6b7a9c11ULL);
    for (int i = 0; i < 20000; ++i) {
        const uint64_t site = rng.nextBelow(6000); // aliases entries
        const bool taken = (rng.next() & 3) != 0;  // biased, like loops
        fused.onBranch(site, taken);
        split.updateBranch(oracle.probeBranch(site), taken);
        ASSERT_TRUE(fused.sameState(split)) << "diverged at branch " << i;
    }
    EXPECT_GT(fused.branchMispredicts(), 0u);
}

TEST(CostProbe, InterleavedStreamsStayIdentical)
{
    // The lockstep shape: one shared probe, several models updating —
    // each lane's model must match its own fused-path twin.
    const CostConfig cfg;
    constexpr unsigned kLanes = 4;
    std::vector<CostModel> fused(kLanes, CostModel(cfg));
    std::vector<CostModel> split(kLanes, CostModel(cfg));

    Rng rng(0xca5cadeULL);
    for (int i = 0; i < 5000; ++i) {
        if (rng.next() & 1) {
            const uint64_t addr = rng.nextBelow(1ULL << 20);
            const auto p = split[0].probeMemAccess(addr);
            for (unsigned l = 0; l < kLanes; ++l) {
                fused[l].onMemAccess(addr);
                split[l].updateMemAccess(p);
            }
        } else {
            const uint64_t site = rng.nextBelow(5000);
            const auto p = split[0].probeBranch(site);
            for (unsigned l = 0; l < kLanes; ++l) {
                // Lanes disagree on direction, like diverging trials.
                const bool taken = ((rng.next() >> l) & 1) != 0;
                fused[l].onBranch(site, taken);
                split[l].updateBranch(p, taken);
            }
        }
    }
    for (unsigned l = 0; l < kLanes; ++l) {
        SCOPED_TRACE(testing::Message() << "lane " << l);
        EXPECT_TRUE(fused[l].sameState(split[l]));
    }
}

} // namespace
} // namespace softcheck
