/**
 * @file
 * Differential tests proving the lockstep-batched tier (lockstep_exec)
 * is bit-identical to the scalar tiers: every lane of a group — forked,
 * peeled mid-flight, pruned to golden, trapped, check-failed, or timed
 * out — must reproduce the exact RunResult, fault record, RNG draws,
 * and final memory of the same trial run alone on the threaded engine,
 * and a whole lockstep campaign must reproduce the threaded campaign's
 * grid bit for bit at every lane width.
 *
 * Engine-level tests start both paths from the pristine image so the
 * resume-relative fields (checkEvals) line up; the campaign-level tests
 * cover the snapshot-keyed group formation end to end.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/test_util.hh"
#include "core/pipeline.hh"
#include "fault/suite.hh"
#include "interp/lockstep_exec.hh"
#include "support/rng.hh"

namespace softcheck
{
namespace
{

/** Same kernel family as test_tier_equiv.cc: nested loops,
 * data-dependent branches, a helper call, local arrays, f64 math —
 * enough control-flow texture that injected faults peel lanes at many
 * different points. */
const char *kMixKernel = R"(
fn mix(a: i32, b: i32) -> i32 {
    var acc: i32 = a * 31 + b;
    if (acc < 0) {
        acc = -acc;
    }
    return acc % 8191;
}

fn main(out: ptr<i32>, n: i32) -> i32 {
    var tmp: i32[64];
    var acc: i32 = 1;
    var f: f64 = 1.0;
    for (var i: i32 = 0; i < n; i = i + 1) {
        tmp[i % 64] = mix(acc, i);
        acc = acc + tmp[i % 64];
        if (acc % 3 == 0) {
            f = f + sqrt(f64(i) + 1.0);
        }
        out[i % 32] = acc + i32(f);
    }
    var sum: i32 = 0;
    for (var i: i32 = 0; i < 32; i = i + 1) {
        sum = sum + out[i];
    }
    return sum;
}
)";

struct TestModule
{
    std::unique_ptr<Module> mod;
    std::unique_ptr<ExecModule> em;
    std::unique_ptr<ThreadedModule> tm;
    std::size_t entry = 0;
};

TestModule
build(const char *src, HardeningMode mode)
{
    TestModule t;
    t.mod = compileMiniLang(src, "lockstep_equiv");
    if (mode != HardeningMode::Original) {
        HardeningOptions h;
        h.mode = mode;
        hardenModule(*t.mod, h);
    }
    t.em = std::make_unique<ExecModule>(*t.mod);
    t.tm = std::make_unique<ThreadedModule>(*t.em);
    t.entry = t.em->functionIndex("main");
    return t;
}

std::vector<uint64_t>
prepArgs(Memory &mem, int n)
{
    const uint64_t out = mem.alloc(64 * 4, "out");
    return {out, static_cast<uint64_t>(n)};
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.term, b.term);
    EXPECT_EQ(a.trap, b.trap);
    EXPECT_EQ(a.failedCheckId, b.failedCheckId);
    EXPECT_EQ(a.retValue, b.retValue);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.endCycle, b.endCycle);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.checkEvals, b.checkEvals);
    EXPECT_EQ(a.prunedToGolden, b.prunedToGolden);
    EXPECT_EQ(a.fault.injected, b.fault.injected);
    EXPECT_EQ(a.fault.slot, b.fault.slot);
    EXPECT_EQ(a.fault.slotType, b.fault.slotType);
    EXPECT_EQ(a.fault.bit, b.fault.bit);
    EXPECT_EQ(a.fault.before, b.fault.before);
    EXPECT_EQ(a.fault.after, b.fault.after);
    EXPECT_EQ(a.fault.atDynInstr, b.fault.atDynInstr);
    EXPECT_EQ(a.fault.atCycle, b.fault.atCycle);
}

/** One trial = (injection point, RNG seed for the slot/bit draws). */
struct TrialSpec
{
    uint64_t faultAt = 0;
    uint64_t seed = 0;
};

/** The reference: the trial alone on the threaded tier, from the
 * pristine image. */
RunResult
scalarTrial(const TestModule &t, int n, const TrialSpec &ts,
            ExecOptions opts, Memory &mem)
{
    const auto args = prepArgs(mem, n);
    Rng rng(ts.seed);
    opts.faultAtDynInstr = ts.faultAt;
    opts.faultRng = &rng;
    ThreadedExec tex(*t.tm, mem);
    ExecState st;
    tex.begin(st, t.entry, args, opts.cost);
    return tex.resume(st, opts);
}

/**
 * The whole point: run @p specs as ONE lane group (finishing peeled
 * lanes on the threaded engine exactly the way the campaign does) and
 * demand each lane be bit-identical to its scalar trial. Returns how
 * many lanes peeled, so callers can assert a scenario actually
 * exercised the peel path.
 */
unsigned
runGroupAgainstScalar(const TestModule &t, int n,
                      std::vector<TrialSpec> specs,
                      const ExecOptions &base)
{
    std::sort(specs.begin(), specs.end(),
              [](const TrialSpec &a, const TrialSpec &b) {
                  return a.faultAt < b.faultAt;
              });

    Memory gm;
    const auto args = prepArgs(gm, n);
    ThreadedExec tex(*t.tm, gm);
    LockstepExec lex(*t.tm, gm);
    ExecState st;
    tex.begin(st, t.entry, args, base.cost);

    std::vector<LaneTrial> lanes(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        lanes[i].faultAt = specs[i].faultAt;
        lanes[i].rng = Rng(specs[i].seed);
    }
    lex.runGroup(st, lanes, base);
    EXPECT_GT(lex.fetches(), 0u);

    unsigned peeled = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(testing::Message()
                     << "lane " << i << " faultAt=" << specs[i].faultAt
                     << " seed=" << specs[i].seed);
        LaneTrial &tr = lanes[i];
        RunResult got;
        const Memory *got_mem = nullptr;
        if (tr.status == LaneStatus::Peeled) {
            ++peeled;
            gm = tr.mem;
            st = std::move(tr.state);
            ExecOptions o = base;
            o.faultAtDynInstr = tr.faultAt; // disarms at once, arms
                                            // golden cadence; no RNG so
                                            // no re-injection
            got = tex.resume(st, o);
            if (!got.prunedToGolden)
                got.checkEvals += tr.checkEvalsAtPeel;
            got.fault = tr.fault;
            got_mem = &gm;
        } else {
            EXPECT_EQ(tr.status, LaneStatus::Done);
            got = tr.result;
            got_mem = &tr.mem;
        }

        Memory sm;
        const RunResult ref = scalarTrial(t, n, specs[i], base, sm);
        expectSameResult(ref, got);
        if (got.term == Termination::Ok && !got.prunedToGolden) {
            EXPECT_TRUE(sm.contentsEqual(*got_mem));
        }
    }
    return peeled;
}

const HardeningMode kModes[] = {HardeningMode::Original,
                                HardeningMode::DupOnly,
                                HardeningMode::FullDup};

TEST(LockstepEquiv, GroupsMatchScalarTrialsAcrossModes)
{
    for (HardeningMode mode : kModes) {
        SCOPED_TRACE(hardeningModeName(mode));
        auto t = build(kMixKernel, mode);
        Memory pm;
        const RunResult full = scalarTrial(t, 200, {~0ULL, 0}, {}, pm);
        ASSERT_TRUE(full.ok());

        Rng pick(0x10c257e9ULL);
        for (int round = 0; round < 4; ++round) {
            std::vector<TrialSpec> specs;
            for (unsigned i = 0; i < 8; ++i)
                specs.push_back({pick.nextBelow(full.dynInstrs),
                                 pick.next()});
            SCOPED_TRACE(testing::Message() << "round " << round);
            runGroupAgainstScalar(t, 200, specs, {});
        }
    }
}

/** Faults at dynamic instruction 0 force forks before the stem has
 * executed anything, and identical injection points put several lanes
 * in one fork batch; flips in the branch-feeding slots force early
 * divergence. Every lane must still match its scalar trial. */
TEST(LockstepEquiv, ForcedEarlyForksAndPeels)
{
    auto t = build(kMixKernel, HardeningMode::DupOnly);
    Memory pm;
    const RunResult full = scalarTrial(t, 120, {~0ULL, 0}, {}, pm);
    ASSERT_TRUE(full.ok());

    // All lanes at instruction 0 with distinct seeds.
    std::vector<TrialSpec> at_zero;
    for (unsigned i = 0; i < 6; ++i)
        at_zero.push_back({0, 0xabc0 + i});
    runGroupAgainstScalar(t, 120, at_zero, {});

    // Duplicate injection points mid-run: lanes fork in one batch.
    std::vector<TrialSpec> dup = {{0, 1},
                                  {0, 2},
                                  {full.dynInstrs / 2, 3},
                                  {full.dynInstrs / 2, 4},
                                  {full.dynInstrs - 2, 5},
                                  {full.dynInstrs - 2, 6}};
    runGroupAgainstScalar(t, 120, dup, {});

    // Enough seeds at one early point that (across the sweep) some
    // group loses every lane to divergence before the run ends.
    unsigned peeled = 0;
    for (uint64_t s = 0; s < 10; ++s) {
        std::vector<TrialSpec> g = {{40, s * 4 + 0},
                                    {40, s * 4 + 1},
                                    {41, s * 4 + 2},
                                    {42, s * 4 + 3}};
        peeled += runGroupAgainstScalar(t, 120, g, {});
    }
    EXPECT_GT(peeled, 0u) << "no lane ever peeled; the divergence path "
                             "was not exercised";
}

/** Golden-convergence pruning inside a group: lanes that re-converge
 * with the fault-free run must prune at the same compare point and
 * adopt the golden result, exactly like a scalar trial. */
TEST(LockstepEquiv, GoldenPruningAgreesInsideGroups)
{
    auto t = build(kMixKernel, HardeningMode::DupOnly);
    const uint64_t stride = 500;

    Memory gp;
    const auto gargs = prepArgs(gp, 200);
    std::vector<Snapshot> snaps;
    ExecOptions rec;
    rec.checkpointEvery = stride;
    rec.checkpointSink = &snaps;
    Interpreter grec(*t.em, gp);
    const RunResult golden = grec.run(t.entry, gargs, rec);
    ASSERT_TRUE(golden.ok());
    ASSERT_GE(snaps.size(), 2u);

    ExecOptions base;
    base.goldenSnapshots = &snaps;
    base.goldenResult = &golden;

    Rng pick(0x90d1e4ULL);
    for (int round = 0; round < 6; ++round) {
        std::vector<TrialSpec> specs;
        for (unsigned i = 0; i < 6; ++i)
            specs.push_back({pick.nextBelow(golden.dynInstrs),
                             pick.next()});
        SCOPED_TRACE(testing::Message() << "round " << round);
        runGroupAgainstScalar(t, 200, specs, base);
    }
}

/** A group instruction budget must cut every lane — forked or still
 * pending behind the stem — at the same instruction as scalar runs. */
TEST(LockstepEquiv, TimeoutCutsGroupAtTheSameInstruction)
{
    auto t = build(kMixKernel, HardeningMode::Original);
    Memory pm;
    const RunResult full = scalarTrial(t, 150, {~0ULL, 0}, {}, pm);
    ASSERT_TRUE(full.ok());

    for (const uint64_t lim :
         {full.dynInstrs / 7, full.dynInstrs / 2, full.dynInstrs - 1}) {
        SCOPED_TRACE(testing::Message() << "maxDynInstrs=" << lim);
        ExecOptions base;
        base.maxDynInstrs = lim;
        // Faults straddling the limit: some lanes fork and then time
        // out, some never fork (still pending behind the stem).
        std::vector<TrialSpec> specs = {{lim / 4, 11},
                                        {lim / 2, 12},
                                        {lim - 1, 13},
                                        {lim + lim / 2, 14},
                                        {full.dynInstrs - 1, 15}};
        for (TrialSpec &s : specs)
            s.faultAt = std::min(s.faultAt, full.dynInstrs - 1);
        runGroupAgainstScalar(t, 150, specs, base);
    }
}

/** Random-program differential fuzzing, same generator family as
 * test_tier_equiv.cc: every generated handler mix (including div/rem
 * trap paths) must survive lockstep grouping bit for bit. */
std::string
randomProgram(Rng &rng)
{
    static const char *const int_ops[] = {"+", "-", "*", "&", "|",
                                          "^", "%", "/"};
    static const char *const f64_fns[] = {"sqrt", "fabs", "exp",
                                          "log",  "sin",  "cos"};
    std::ostringstream os;

    const int helper_c = static_cast<int>(rng.nextRange(900, 1100));
    os << "fn helper(a: i32, b: i32) -> i32 {\n"
       << "    var r: i32 = a " << int_ops[rng.nextBelow(6)] << " b;\n"
       << "    if (r < 0) { r = -r; }\n"
       << "    return r % " << helper_c << ";\n"
       << "}\n";

    os << "fn main(out: ptr<i32>, n: i32) -> i32 {\n"
       << "    var buf: i32[" << rng.nextRange(8, 32) << "];\n"
       << "    var acc: i32 = " << rng.nextRange(1, 64) << ";\n"
       << "    var wide: i64 = " << rng.nextRange(0, 9) << ";\n"
       << "    var f: f64 = " << rng.nextRange(1, 4) << ".5;\n"
       << "    var g: f32 = 0.25;\n";
    os << "    for (var i: i32 = 0; i < n; i = i + 1) {\n";

    const unsigned stmts = 3 + static_cast<unsigned>(rng.nextBelow(5));
    for (unsigned s = 0; s < stmts; ++s) {
        switch (rng.nextBelow(7)) {
          case 0:
            os << "        acc = acc " << int_ops[rng.nextBelow(8)]
               << " (i + " << rng.nextRange(1, 97) << ");\n";
            break;
          case 1:
            os << "        buf[i % " << rng.nextRange(2, 8)
               << "] = helper(acc, i " << int_ops[rng.nextBelow(6)]
               << " " << rng.nextRange(1, 31) << ");\n";
            break;
          case 2:
            os << "        acc = acc + buf[(i + "
               << rng.nextRange(0, 7) << ") % "
               << rng.nextRange(2, 8) << "];\n";
            break;
          case 3:
            os << "        if (acc % " << rng.nextRange(2, 9) << " == "
               << rng.nextRange(0, 1) << ") {\n"
               << "            f = f + " << f64_fns[rng.nextBelow(6)]
               << "(f64(i % " << rng.nextRange(3, 19)
               << ") + 1.5);\n"
               << "        } else {\n"
               << "            g = g * f32(1.03125) + f32(i % 3);\n"
               << "        }\n";
            break;
          case 4:
            os << "        wide = wide + i64(acc "
               << int_ops[rng.nextBelow(6)] << " "
               << rng.nextRange(1, 255) << ") + i64(g);\n";
            break;
          case 5:
            os << "        acc = (acc << " << rng.nextRange(1, 3)
               << ") ^ (acc >> " << rng.nextRange(1, 5) << ");\n";
            break;
          default:
            // Denominator reaches zero on some iterations for some
            // generated constants — deliberate: traps must match too.
            os << "        acc = acc " << (rng.nextBelow(2) ? "/" : "%")
               << " ((i % " << rng.nextRange(2, 5) << ") + "
               << rng.nextRange(0, 1) << ");\n";
            break;
        }
    }
    os << "        out[i % 8] = acc + i32(f) + i32(wide % 1000);\n"
       << "    }\n"
       << "    var sum: i32 = 0;\n"
       << "    for (var i: i32 = 0; i < 8; i = i + 1) {\n"
       << "        sum = sum + out[i];\n"
       << "    }\n"
       << "    return sum + i32(f) + i32(g) + i32(wide % 65536);\n"
       << "}\n";
    return os.str();
}

TEST(LockstepEquiv, RandomProgramsMatchInGroups)
{
    Rng gen(0x10c257e0f2eULL);
    for (int p = 0; p < 15; ++p) {
        const std::string src = randomProgram(gen);
        const HardeningMode mode =
            kModes[gen.nextBelow(std::size(kModes))];
        SCOPED_TRACE(testing::Message()
                     << "program " << p << " mode="
                     << hardeningModeName(mode) << "\n"
                     << src);
        auto t = build(src.c_str(), mode);
        const int n = static_cast<int>(gen.nextRange(40, 120));

        Memory pm;
        const RunResult full = scalarTrial(t, n, {~0ULL, 0}, {}, pm);
        if (!full.ok() || full.dynInstrs < 8)
            continue; // the fault-free program traps; nothing to group

        std::vector<TrialSpec> specs;
        for (unsigned i = 0; i < 6; ++i)
            specs.push_back({gen.nextBelow(full.dynInstrs), gen.next()});
        runGroupAgainstScalar(t, n, specs, {});
    }
}

// ---------------------------------------------------------------------
// Campaign level: the lockstep tier as the campaign engine runs it,
// including snapshot-keyed group formation and lane occupancy.
// ---------------------------------------------------------------------

void
expectSameCell(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.usdcLargeChange, b.usdcLargeChange);
    EXPECT_EQ(a.usdcSmallChange, b.usdcSmallChange);
    EXPECT_EQ(a.goldenDynInstrs, b.goldenDynInstrs);
    EXPECT_EQ(a.goldenCycles, b.goldenCycles);
    EXPECT_EQ(a.goldenCheckEvals, b.goldenCheckEvals);
    EXPECT_EQ(a.baselineCycles, b.baselineCycles);
    EXPECT_EQ(a.calibrationCheckFails, b.calibrationCheckFails);
    EXPECT_EQ(a.disabledCheckCount, b.disabledCheckCount);
    EXPECT_EQ(a.totalCheckCount, b.totalCheckCount);
    EXPECT_EQ(a.snapshotCount, b.snapshotCount);
    EXPECT_EQ(a.snapshotBytes, b.snapshotBytes);
    EXPECT_EQ(a.snapshotBytesFullCopy, b.snapshotBytesFullCopy);
}

/** Every workload, every hardening mode: the default-width lockstep
 * suite must reproduce the threaded-tier suite bit for bit (which the
 * tier-campaign test in tests/fault pins to the interpreter). */
TEST(LockstepEquiv, SuiteGridBitIdenticalToThreaded)
{
    SuiteConfig sc;
    for (const Workload *w : allWorkloads())
        sc.workloads.push_back(w->name);
    sc.modes = {HardeningMode::Original, HardeningMode::DupOnly,
                HardeningMode::DupValChks, HardeningMode::FullDup};
    sc.seeds = {0x5eed};
    sc.base.trials = 12;

    sc.base.tier = ExecTier::Threaded;
    const SuiteResult ref = runCampaignSuite(sc);

    sc.base.tier = ExecTier::Lockstep;
    const SuiteResult got = runCampaignSuite(sc);

    ASSERT_EQ(got.cells.size(), ref.cells.size());
    for (std::size_t i = 0; i < ref.cells.size(); ++i) {
        SCOPED_TRACE(testing::Message()
                     << "cell " << i << " ("
                     << ref.cells[i].config.workload << ", "
                     << hardeningModeName(ref.cells[i].config.mode)
                     << ")");
        expectSameCell(got.cells[i], ref.cells[i]);
    }
}

/** Lane widths 1/4/16, with and without fast-forward snapshots
 * (checkpoints=0 routes every trial through one pristine-keyed
 * bucket, so groups exercise the begin() path too). */
TEST(LockstepEquiv, LaneWidthsAllMatchThreaded)
{
    for (const unsigned checkpoints : {32u, 0u}) {
        CampaignConfig cfg;
        cfg.workload = "g721enc";
        cfg.mode = HardeningMode::DupValChks;
        cfg.trials = 150;
        cfg.checkpoints = checkpoints;
        SCOPED_TRACE(testing::Message()
                     << "checkpoints=" << checkpoints);

        cfg.tier = ExecTier::Threaded;
        const CampaignResult ref = runCampaign(cfg);
        ASSERT_EQ(ref.totalTrials(), 150u);

        for (const unsigned lanes : {1u, 4u, 16u}) {
            SCOPED_TRACE(testing::Message() << "lanes=" << lanes);
            cfg.tier = ExecTier::Lockstep;
            cfg.lanes = lanes;
            const CampaignResult got = runCampaign(cfg);
            expectSameCell(ref, got);
            if (lanes > 1 && checkpoints == 0) {
                // With snapshots the profitability guard may route
                // every group back to the scalar tier (that is its
                // job); without them grouping always wins, so lane
                // groups must actually have run.
                EXPECT_GT(got.laneOccupancy, 0.0);
            }
            EXPECT_LE(got.laneOccupancy, 1.0);
        }
    }
}

} // namespace
} // namespace softcheck
