#include <gtest/gtest.h>

#include "common/test_util.hh"
#include "core/pipeline.hh"
#include "ir/clone.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "workloads/workload.hh"

namespace softcheck
{
namespace
{

TEST(CloneModule, TextuallyIdentical)
{
    auto mod = compileMiniLang(R"(
        const T: i32[4] = [9, 8, 7, 6];
        fn helper(a: i32) -> i32 { return T[a & 3] * 2; }
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + helper(i);
            }
            return s;
        })", "t");
    auto copy = cloneModule(*mod);
    EXPECT_EQ(moduleToString(*mod), moduleToString(*copy));
    EXPECT_TRUE(verifyModule(*copy).empty());
}

TEST(CloneModule, IndependentExecution)
{
    auto mod = compileMiniLang(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s * 3 + i;
            }
            return s;
        })", "t");
    auto copy = cloneModule(*mod);

    auto run = [](Module &m) {
        ExecModule em(m);
        Memory mem;
        Interpreter interp(em, mem);
        return interp.run(em.functionIndex("main"), {12}, {}).retValue;
    };
    EXPECT_EQ(run(*mod), run(*copy));
}

TEST(CloneModule, MutationDoesNotLeakBack)
{
    auto mod = compileMiniLang(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + i;
            }
            return s;
        })", "t");
    const std::string before = moduleToString(*mod);

    // Harden the clone; the original must not change.
    auto copy = cloneModule(*mod);
    HardeningOptions opts;
    opts.mode = HardeningMode::DupOnly;
    auto report = hardenModule(*copy, opts);
    EXPECT_GT(report.duplicatedInstrs + report.shadowPhis, 0u);

    mod->renumberAll();
    EXPECT_EQ(moduleToString(*mod), before);
    EXPECT_NE(moduleToString(*copy), before);
}

TEST(CloneModule, PreservesHardeningMetadata)
{
    auto mod = compileMiniLang(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + i;
            }
            return s;
        })", "t");
    assignProfileSites(*mod);
    HardeningOptions opts;
    opts.mode = HardeningMode::DupOnly;
    hardenModule(*mod, opts);
    auto copy = cloneModule(*mod);

    auto fi = mod->functions().begin();
    auto ci = copy->functions().begin();
    for (; fi != mod->functions().end(); ++fi, ++ci) {
        auto fb = (*fi)->begin();
        auto cb = (*ci)->begin();
        for (; fb != (*fi)->end(); ++fb, ++cb) {
            auto fit = (*fb)->begin();
            auto cit = (*cb)->begin();
            for (; fit != (*fb)->end(); ++fit, ++cit) {
                EXPECT_EQ((*fit)->opcode(), (*cit)->opcode());
                EXPECT_EQ((*fit)->checkId(), (*cit)->checkId());
                EXPECT_EQ((*fit)->profileId(), (*cit)->profileId());
                EXPECT_EQ((*fit)->isDuplicate(), (*cit)->isDuplicate());
            }
        }
    }
}

TEST(CloneModule, WorksOnAllWorkloads)
{
    for (const Workload *w : allWorkloads()) {
        auto mod = compileMiniLang(w->source, w->name);
        auto copy = cloneModule(*mod);
        EXPECT_EQ(moduleToString(*mod), moduleToString(*copy))
            << w->name;
    }
}

} // namespace
} // namespace softcheck
