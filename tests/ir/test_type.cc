#include <gtest/gtest.h>

#include "ir/type.hh"

namespace softcheck
{
namespace
{

TEST(Type, Predicates)
{
    EXPECT_TRUE(Type::voidTy().isVoid());
    EXPECT_TRUE(Type::i1().isInteger());
    EXPECT_TRUE(Type::i64().isInteger());
    EXPECT_TRUE(Type::f32().isFloat());
    EXPECT_TRUE(Type::f64().isFloat());
    EXPECT_TRUE(Type::ptr().isPtr());
    EXPECT_FALSE(Type::ptr().isInteger());
    EXPECT_FALSE(Type::f64().isInteger());
    EXPECT_FALSE(Type::i32().isFloat());
}

TEST(Type, BitWidths)
{
    EXPECT_EQ(Type::voidTy().bitWidth(), 0u);
    EXPECT_EQ(Type::i1().bitWidth(), 1u);
    EXPECT_EQ(Type::i8().bitWidth(), 8u);
    EXPECT_EQ(Type::i16().bitWidth(), 16u);
    EXPECT_EQ(Type::i32().bitWidth(), 32u);
    EXPECT_EQ(Type::i64().bitWidth(), 64u);
    EXPECT_EQ(Type::f32().bitWidth(), 32u);
    EXPECT_EQ(Type::f64().bitWidth(), 64u);
    EXPECT_EQ(Type::ptr().bitWidth(), 64u);
}

TEST(Type, StoreSizes)
{
    EXPECT_EQ(Type::i1().storeSize(), 1u);
    EXPECT_EQ(Type::i8().storeSize(), 1u);
    EXPECT_EQ(Type::i16().storeSize(), 2u);
    EXPECT_EQ(Type::i32().storeSize(), 4u);
    EXPECT_EQ(Type::i64().storeSize(), 8u);
    EXPECT_EQ(Type::f32().storeSize(), 4u);
    EXPECT_EQ(Type::f64().storeSize(), 8u);
    EXPECT_EQ(Type::ptr().storeSize(), 8u);
}

TEST(Type, Equality)
{
    EXPECT_EQ(Type::i32(), Type::i32());
    EXPECT_NE(Type::i32(), Type::i64());
    EXPECT_NE(Type::f32(), Type::i32());
}

TEST(Type, Spelling)
{
    EXPECT_EQ(Type::i32().str(), "i32");
    EXPECT_EQ(Type::f64().str(), "f64");
    EXPECT_EQ(Type::ptr().str(), "ptr");
    EXPECT_EQ(Type::voidTy().str(), "void");
}

} // namespace
} // namespace softcheck
