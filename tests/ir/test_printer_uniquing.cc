#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/test_util.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"

namespace softcheck
{
namespace
{

TEST(PrinterUniquing, DuplicateSourceNamesDisambiguated)
{
    // Two reads of w produce two instructions both named "w.v"; the
    // printed form must still be unambiguous (parseable).
    auto mod = compileMiniLang(R"(
        fn main(w: ptr<i32>, n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = s + w[i] * w[n - 1 - i];
            }
            return s;
        })", "t");
    const std::string text = moduleToString(*mod);

    // Every definition (%name =) must be unique within the function.
    std::set<std::string> defs;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        const auto eq = line.find(" = ");
        if (eq == std::string::npos)
            continue;
        const auto pct = line.find('%');
        if (pct == std::string::npos || pct > eq)
            continue;
        const std::string def = line.substr(pct, eq - pct);
        EXPECT_TRUE(defs.insert(def).second)
            << "duplicate definition " << def;
    }

    // And the text must parse and execute identically.
    auto reparsed = parseIR(text, "t");
    Memory m1, m2;
    const uint64_t b1 = m1.alloc(4 * 8), b2 = m2.alloc(4 * 8);
    for (int i = 0; i < 8; ++i) {
        m1.write(b1 + 4u * static_cast<unsigned>(i), 4,
                 static_cast<uint64_t>(i + 1));
        m2.write(b2 + 4u * static_cast<unsigned>(i), 4,
                 static_cast<uint64_t>(i + 1));
    }
    ExecModule e1(*mod), e2(*reparsed);
    Interpreter i1(e1, m1), i2(e2, m2);
    auto r1 = i1.run(e1.functionIndex("main"), {b1, 8}, {});
    auto r2 = i2.run(e2.functionIndex("main"), {b2, 8}, {});
    EXPECT_EQ(r1.retValue, r2.retValue);
}

TEST(PrinterUniquing, StableAcrossRepeatedPrints)
{
    auto mod = compileMiniLang(R"(
        fn main(p: ptr<i32>) -> i32 {
            return p[0] + p[1] + p[0];
        })", "t");
    EXPECT_EQ(moduleToString(*mod), moduleToString(*mod));
}

} // namespace
} // namespace softcheck
