#include <gtest/gtest.h>

#include "common/test_util.hh"
#include "core/pipeline.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "profile/value_profiler.hh"
#include "workloads/workload.hh"

namespace softcheck
{
namespace
{

/** print -> parse -> print must be a fixed point. */
void
expectRoundTrip(Module &m)
{
    m.renumberAll();
    const std::string once = moduleToString(m);
    auto parsed = parseIR(once, m.name());
    const std::string twice = moduleToString(*parsed);
    EXPECT_EQ(once, twice);
}

TEST(IrParser, ParsesSimpleFunction)
{
    auto mod = parseIR(R"(
fn @add1(i32 %x) -> i32 {
entry:
    %r = add i32 %x, 1
    ret i32 %r
}
)");
    Function *f = mod->getFunction("add1");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->numArgs(), 1u);
    EXPECT_EQ(f->returnType(), Type::i32());
    EXPECT_EQ(f->entry()->size(), 2u);
}

TEST(IrParser, ExecutesParsedFunction)
{
    auto mod = parseIR(R"(
fn @triple(i32 %x) -> i32 {
entry:
    %d = mul i32 %x, 3
    ret i32 %d
}
)");
    ExecModule em(*mod);
    Memory mem;
    Interpreter interp(em, mem);
    auto r = interp.run(em.functionIndex("triple"), {14}, {});
    EXPECT_EQ(static_cast<int64_t>(r.retValue), 42);
}

TEST(IrParser, ForwardReferencesAndPhis)
{
    auto mod = parseIR(R"(
fn @sum(i32 %n) -> i32 {
entry:
    br label %head
head:
    %i = phi i32 [0, %entry], [%i2, %head]
    %s = phi i32 [0, %entry], [%s2, %head]
    %s2 = add i32 %s, %i
    %i2 = add i32 %i, 1
    %c = icmp slt i32 %i2, %n
    condbr i1 %c, label %head, label %done
done:
    ret i32 %s2
}
)");
    ExecModule em(*mod);
    Memory mem;
    Interpreter interp(em, mem);
    auto r = interp.run(em.functionIndex("sum"), {10}, {});
    EXPECT_EQ(static_cast<int64_t>(r.retValue), 45);
}

TEST(IrParser, GlobalsAndChecksRoundTrip)
{
    auto mod = parseIR(R"(
global @TAB : i32[4] = [5, -6, 7, 8]
fn @main(i32 %x) -> i32 {
entry:
    %g = globaladdr @TAB
    %i = sext i32 %x to i64
    %p = gep i32, ptr %g, i64 %i
    %v = load i32, ptr %p
    check.range i32 %v, i32 -10, i32 10 !check_id 0
    ret i32 %v
}
)");
    ASSERT_EQ(mod->globals().size(), 1u);
    ExecModule em(*mod);
    Memory mem;
    Interpreter interp(em, mem);
    auto r = interp.run(em.functionIndex("main"), {1}, {});
    // retValue holds the canonical (zero-extended) i32.
    EXPECT_EQ(static_cast<int32_t>(r.retValue), -6);
    expectRoundTrip(*mod);
}

TEST(IrParser, FloatsRoundTripExactly)
{
    auto mod = parseIR(R"(
fn @f(f64 %x) -> f64 {
entry:
    %a = fmul f64 %x, 0.70710678118654757
    %b = sqrt f64 %a
    %c = fmin f64 %b, f64 %x
    ret f64 %c
}
)");
    expectRoundTrip(*mod);
}

TEST(IrParser, SelectAndCalls)
{
    auto mod = parseIR(R"(
fn @abs(i32 %x) -> i32 {
entry:
    %neg = sub i32 0, %x
    %c = icmp slt i32 %x, 0
    %r = select i1 %c, i32 %neg, i32 %x
    ret i32 %r
}
fn @main(i32 %x) -> i32 {
entry:
    %r = call i32 @abs(i32 %x)
    ret i32 %r
}
)");
    ExecModule em(*mod);
    Memory mem;
    Interpreter interp(em, mem);
    auto r = interp.run(em.functionIndex("main"),
                        {truncBits(static_cast<uint64_t>(-9), 32)}, {});
    EXPECT_EQ(static_cast<int64_t>(r.retValue), 9);
    expectRoundTrip(*mod);
}

TEST(IrParser, RejectsMalformedInput)
{
    EXPECT_THROW(parseIR("fn @f() -> i32 {\nentry:\n    ret i32 %x\n}"),
                 FatalError); // undefined value
    EXPECT_THROW(parseIR("fn @f() -> i32 {\nentry:\n    frob i32 1\n}"),
                 FatalError); // unknown opcode
    EXPECT_THROW(parseIR("fn @f() -> i32 {"), FatalError); // no '}'
    EXPECT_THROW(
        parseIR("fn @f() -> i32 {\nentry:\n    %r = add i32 1, 2\n    "
                "%r = add i32 1, 2\n    ret i32 %r\n}"),
        FatalError); // redefinition
}

TEST(IrParser, TypeMismatchDetected)
{
    EXPECT_THROW(parseIR(R"(
fn @f(i64 %x) -> i32 {
entry:
    %r = add i32 %x, 1
    ret i32 %r
}
)"),
                 FatalError);
}

/** Round-trip property over every compiled-and-hardened workload. */
class ParserRoundTrip : public ::testing::TestWithParam<const Workload *>
{};

TEST_P(ParserRoundTrip, CompiledModule)
{
    auto mod = compileMiniLang(GetParam()->source, GetParam()->name);
    expectRoundTrip(*mod);
}

TEST_P(ParserRoundTrip, HardenedModule)
{
    auto mod = compileMiniLang(GetParam()->source, GetParam()->name);
    HardeningOptions opts;
    opts.mode = HardeningMode::DupOnly;
    hardenModule(*mod, opts);
    expectRoundTrip(*mod);
}

INSTANTIATE_TEST_SUITE_P(
    All13, ParserRoundTrip, ::testing::ValuesIn(allWorkloads()),
    [](const auto &info) { return info.param->name; });

TEST(IrParser, ParsedHardenedModuleExecutesIdentically)
{
    const Workload &w = getWorkload("tiff2bw");
    auto mod = compileMiniLang(w.source, w.name);
    HardeningOptions opts;
    opts.mode = HardeningMode::DupOnly;
    hardenModule(*mod, opts);

    auto reparsed = parseIR(moduleToString(*mod), w.name);

    auto spec = w.makeInput(false);
    auto run_module = [&](Module &m) {
        ExecModule em(m);
        auto run = prepareRun(spec);
        Interpreter interp(em, *run.mem);
        auto r = interp.run(em.functionIndex(w.entry), run.args, {});
        EXPECT_EQ(r.term, Termination::Ok);
        return std::make_pair(r.retValue,
                              extractSignal(w, spec, run));
    };
    auto a = run_module(*mod);
    auto b = run_module(*reparsed);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

} // namespace
} // namespace softcheck
