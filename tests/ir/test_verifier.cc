/**
 * @file
 * IR verifier tests for the CFG-consistency rules: a phi must carry
 * exactly one incoming per CFG predecessor (count and uniqueness, not
 * just set equality), and pred/succ edge lists must agree.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/test_util.hh"
#include "ir/irbuilder.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"

using namespace softcheck;

namespace
{

bool
mentions(const std::vector<std::string> &probs, const char *needle)
{
    for (const std::string &p : probs)
        if (p.find(needle) != std::string::npos)
            return true;
    return false;
}

/** entry --cond--> {a, b} --> join, with a phi at the join. */
struct DiamondFixture : ::testing::Test
{
    Module m{"t"};
    Function *f = nullptr;
    BasicBlock *entry = nullptr, *a = nullptr, *b = nullptr,
               *join = nullptr;
    Instruction *phi = nullptr;

    void
    SetUp() override
    {
        f = m.createFunction("f", Type::i32());
        Argument *x = f->addArg(Type::i32(), "x");
        IRBuilder ib(m);
        entry = f->addBlock("entry");
        a = f->addBlock("a");
        b = f->addBlock("b");
        join = f->addBlock("join");
        ib.setInsertPoint(entry);
        auto *cmp =
            ib.createICmp(Predicate::Slt, x, ib.constI32(0), "c");
        ib.createCondBr(cmp, a, b);
        ib.setInsertPoint(a);
        ib.createBr(join);
        ib.setInsertPoint(b);
        ib.createBr(join);
        ib.setInsertPoint(join);
        phi = ib.createPhi(Type::i32(), "p");
        phi->addIncoming(ib.constI32(1), a);
        phi->addIncoming(ib.constI32(2), b);
        ib.createRet(phi);
        f->renumber();
    }
};

TEST_F(DiamondFixture, CleanDiamondVerifies)
{
    EXPECT_TRUE(verifyFunction(*f).empty());
}

TEST_F(DiamondFixture, PhiMissingIncomingIsFlagged)
{
    phi->removeIncoming(1); // drop the edge from b
    auto probs = verifyFunction(*f);
    EXPECT_TRUE(mentions(probs, "missing incoming"))
        << "problems: " << (probs.empty() ? "(none)" : probs.front());
}

TEST_F(DiamondFixture, PhiDuplicateIncomingIsFlagged)
{
    // Replace the edge from b with a second edge from a: the incoming
    // *set* still matches the predecessor set, which the old
    // set-equality check could not distinguish.
    phi->removeIncoming(1);
    phi->addIncoming(m.getConstInt(Type::i32(), 3), a);
    auto probs = verifyFunction(*f);
    EXPECT_TRUE(mentions(probs, "two incomings"));
    EXPECT_TRUE(mentions(probs, "missing incoming"));
}

TEST_F(DiamondFixture, PhiIncomingFromNonPredecessorIsFlagged)
{
    phi->addIncoming(m.getConstInt(Type::i32(), 9), entry);
    auto probs = verifyFunction(*f);
    EXPECT_TRUE(mentions(probs, "non-predecessor"));
}

TEST_F(DiamondFixture, ElidedFlagRoundTripsThroughText)
{
    // Mark a check elided, print, reparse: the flag must survive.
    IRBuilder ib(m);
    ib.setInsertBefore(join->terminator());
    auto *chk =
        ib.createCheckRange(phi, ib.constI32(0), ib.constI32(10), 0);
    chk->setElided(true);
    f->renumber();
    ASSERT_TRUE(verifyFunction(*f).empty());

    const std::string text = moduleToString(m);
    EXPECT_NE(text.find("!elided"), std::string::npos);
    auto reparsed = parseIR(text, "reparsed");
    bool found = false;
    for (Function *fn : reparsed->functions())
        for (const auto &bb2 : *fn)
            for (const auto &inst : *bb2)
                if (inst->opcode() == Opcode::CheckRange) {
                    EXPECT_TRUE(inst->isElided());
                    found = true;
                }
    EXPECT_TRUE(found);
}

} // namespace
