#include <gtest/gtest.h>

#include <sstream>

#include "ir/irbuilder.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"

namespace softcheck
{
namespace
{

TEST(Module, ConstantUniquing)
{
    Module m("t");
    EXPECT_EQ(m.getConstInt(Type::i32(), int64_t{7}),
              m.getConstInt(Type::i32(), int64_t{7}));
    EXPECT_NE(m.getConstInt(Type::i32(), int64_t{7}),
              m.getConstInt(Type::i64(), int64_t{7}));
    EXPECT_EQ(m.getConstFloat(Type::f64(), 1.5),
              m.getConstFloat(Type::f64(), 1.5));
    EXPECT_NE(m.getConstFloat(Type::f64(), 1.5),
              m.getConstFloat(Type::f64(), 2.5));
}

TEST(Module, ConstantsAreCanonical)
{
    Module m("t");
    // 0x1FF truncated to i8 == 0xFF == -1 signed.
    auto *c = m.getConstInt(Type::i8(), uint64_t{0x1FF});
    EXPECT_EQ(c->rawValue(), 0xFFu);
    EXPECT_EQ(c->signedValue(), -1);
}

TEST(Module, DuplicateFunctionNameRejected)
{
    Module m("t");
    m.createFunction("f", Type::i32());
    EXPECT_THROW(m.createFunction("f", Type::i32()), FatalError);
}

TEST(Module, GlobalRoundTrip)
{
    Module m("t");
    auto *g = m.createGlobal("tab", Type::i32(), {1, 2, 3});
    EXPECT_EQ(m.getGlobal("tab"), g);
    EXPECT_EQ(g->count(), 3u);
    EXPECT_EQ(g->index(), 0u);
    EXPECT_EQ(m.getGlobal("nope"), nullptr);
    EXPECT_THROW(m.createGlobal("tab", Type::i32(), {1}), FatalError);
}

/** Build: fn add1(i32 %x) -> i32 { ret x + 1 } */
Function *
buildAdd1(Module &m)
{
    Function *f = m.createFunction("add1", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    BasicBlock *bb = f->addBlock("entry");
    IRBuilder b(m);
    b.setInsertPoint(bb);
    auto *sum = b.createAdd(x, m.getConstInt(Type::i32(), int64_t{1}));
    b.createRet(sum);
    return f;
}

TEST(Function, RenumberAssignsSlots)
{
    Module m("t");
    Function *f = buildAdd1(m);
    f->renumber();
    EXPECT_EQ(f->arg(0)->slot(), 0);
    EXPECT_EQ(f->numSlots(), 2u); // arg + add result
    EXPECT_EQ(f->numInstructions(), 2u);
}

TEST(Function, PredecessorsComputed)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::voidTy());
    auto *a = f->addBlock("a");
    auto *b1 = f->addBlock("b");
    auto *c = f->addBlock("c");
    IRBuilder b(m);
    b.setInsertPoint(a);
    b.createCondBr(m.getTrue(), b1, c);
    b.setInsertPoint(b1);
    b.createBr(c);
    b.setInsertPoint(c);
    b.createRet();
    auto preds = f->predecessors();
    EXPECT_EQ(preds.at(a).size(), 0u);
    EXPECT_EQ(preds.at(b1).size(), 1u);
    EXPECT_EQ(preds.at(c).size(), 2u);
}

TEST(Function, ReversePostOrderStartsAtEntry)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::voidTy());
    auto *a = f->addBlock("a");
    auto *b1 = f->addBlock("b");
    auto *c = f->addBlock("c");
    IRBuilder b(m);
    b.setInsertPoint(a);
    b.createBr(b1);
    b.setInsertPoint(b1);
    b.createBr(c);
    b.setInsertPoint(c);
    b.createRet();
    auto rpo = f->reversePostOrder();
    ASSERT_EQ(rpo.size(), 3u);
    EXPECT_EQ(rpo[0], a);
    EXPECT_EQ(rpo[1], b1);
    EXPECT_EQ(rpo[2], c);
}

TEST(Value, UseListsTrackOperands)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    BasicBlock *bb = f->addBlock("entry");
    IRBuilder b(m);
    b.setInsertPoint(bb);
    auto *a1 = b.createAdd(x, x);
    EXPECT_EQ(x->users().size(), 2u); // used twice by a1
    auto *a2 = b.createAdd(a1, x);
    EXPECT_EQ(x->users().size(), 3u);
    EXPECT_EQ(a1->users().size(), 1u);
    b.createRet(a2);
}

TEST(Value, ReplaceAllUsesWith)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    Argument *y = f->addArg(Type::i32(), "y");
    BasicBlock *bb = f->addBlock("entry");
    IRBuilder b(m);
    b.setInsertPoint(bb);
    auto *a1 = b.createAdd(x, x);
    b.createRet(a1);
    x->replaceAllUsesWith(y);
    EXPECT_TRUE(x->users().empty());
    EXPECT_EQ(a1->operand(0), y);
    EXPECT_EQ(a1->operand(1), y);
}

TEST(Instruction, CloneForDuplication)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    BasicBlock *bb = f->addBlock("entry");
    IRBuilder b(m);
    b.setInsertPoint(bb);
    auto *a1 = b.createAdd(x, m.getConstInt(Type::i32(), int64_t{3}),
                           "s");
    a1->setProfileId(5);
    a1->setCheckId(2);
    auto clone = cloneForDuplication(*a1);
    EXPECT_EQ(clone->opcode(), Opcode::Add);
    EXPECT_TRUE(clone->isDuplicate());
    EXPECT_EQ(clone->profileId(), -1);
    EXPECT_EQ(clone->checkId(), -1);
    EXPECT_EQ(clone->operand(0), x);
    EXPECT_EQ(clone->name(), "s.d");
    clone->dropAllOperands();
    b.createRet(a1);
}

TEST(Printer, RendersFunction)
{
    Module m("t");
    buildAdd1(m);
    m.renumberAll();
    const std::string text = moduleToString(m);
    EXPECT_NE(text.find("fn @add1(i32 %x) -> i32"), std::string::npos);
    EXPECT_NE(text.find("add i32 %x, 1"), std::string::npos);
    EXPECT_NE(text.find("ret i32"), std::string::npos);
}

TEST(Printer, RendersChecksWithIds)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::voidTy());
    Argument *x = f->addArg(Type::i32(), "x");
    auto *bb = f->addBlock("entry");
    IRBuilder b(m);
    b.setInsertPoint(bb);
    b.createCheckRange(x, m.getConstInt(Type::i32(), int64_t{0}),
                       m.getConstInt(Type::i32(), int64_t{10}), 3);
    b.createRet();
    const std::string text = functionToString(*f);
    EXPECT_NE(text.find("check.range"), std::string::npos);
    EXPECT_NE(text.find("!check_id 3"), std::string::npos);
}

TEST(Verifier, AcceptsValidFunction)
{
    Module m("t");
    buildAdd1(m);
    EXPECT_TRUE(verifyModule(m).empty());
}

TEST(Verifier, DetectsMissingTerminator)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::voidTy());
    auto *bb = f->addBlock("entry");
    IRBuilder b(m);
    b.setInsertPoint(bb);
    b.createAdd(m.getConstInt(Type::i32(), int64_t{1}),
                m.getConstInt(Type::i32(), int64_t{2}));
    auto probs = verifyFunction(*f);
    ASSERT_FALSE(probs.empty());
    EXPECT_NE(probs.front().find("terminator"), std::string::npos);
}

TEST(Verifier, DetectsPhiPredMismatch)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    auto *a = f->addBlock("a");
    auto *b1 = f->addBlock("b");
    IRBuilder b(m);
    b.setInsertPoint(a);
    b.createBr(b1);
    b.setInsertPoint(b1);
    auto *phi = b.createPhi(Type::i32());
    // Incoming from a block that is NOT a predecessor (b1 itself).
    phi->addIncoming(m.getConstInt(Type::i32(), int64_t{1}), b1);
    b.createRet(phi);
    auto probs = verifyFunction(*f);
    ASSERT_FALSE(probs.empty());
}

TEST(Verifier, DetectsCrossFunctionOperand)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    Argument *x = f->addArg(Type::i32(), "x");
    auto *fb = f->addBlock("entry");
    IRBuilder b(m);
    b.setInsertPoint(fb);
    b.createRet(x);

    Function *g = m.createFunction("g", Type::i32());
    auto *gb = g->addBlock("entry");
    b.setInsertPoint(gb);
    b.createRet(x); // x belongs to f
    auto probs = verifyFunction(*g);
    ASSERT_FALSE(probs.empty());
    EXPECT_NE(probs.front().find("outside"), std::string::npos);
}

TEST(Verifier, DetectsReturnTypeMismatch)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i64());
    auto *bb = f->addBlock("entry");
    IRBuilder b(m);
    b.setInsertPoint(bb);
    b.createRet(m.getConstInt(Type::i32(), int64_t{1}));
    auto probs = verifyFunction(*f);
    ASSERT_FALSE(probs.empty());
}

TEST(Builder, TypeChecksRejectBadOperands)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::voidTy());
    auto *bb = f->addBlock("entry");
    IRBuilder b(m);
    b.setInsertPoint(bb);
    // Builder misuse is a programmer error -> scAssert panics.
    EXPECT_DEATH_IF_SUPPORTED(
        (void)b.createAdd(m.getConstInt(Type::i32(), int64_t{1}),
                          m.getConstInt(Type::i64(), int64_t{1})),
        "type mismatch");
    EXPECT_DEATH_IF_SUPPORTED(
        (void)b.createFAdd(m.getConstInt(Type::i32(), int64_t{1}),
                           m.getConstInt(Type::i32(), int64_t{1})),
        "needs float");
}

TEST(BasicBlock, PhiHelpers)
{
    Module m("t");
    Function *f = m.createFunction("f", Type::i32());
    auto *a = f->addBlock("a");
    auto *b1 = f->addBlock("b");
    IRBuilder b(m);
    b.setInsertPoint(a);
    b.createBr(b1);
    b.setInsertPoint(b1);
    auto *phi = b.createPhi(Type::i32());
    phi->addIncoming(m.getConstInt(Type::i32(), int64_t{1}), a);
    auto *add = b.createAdd(phi, phi);
    b.createRet(add);
    EXPECT_EQ(b1->phis().size(), 1u);
    EXPECT_EQ((*b1->firstNonPhi()).get(), add);
    EXPECT_EQ(phi->incomingValueFor(a),
              m.getConstInt(Type::i32(), int64_t{1}));
    EXPECT_EQ(phi->incomingValueFor(b1), nullptr);
}

} // namespace
} // namespace softcheck
