/**
 * @file
 * In-process daemon tests: bind a CampaignDaemon on a private socket,
 * serve it from a background thread, and drive it with the same
 * daemonRequest client the CLI uses. The protocol-level claims: SUITE
 * responses carry the exact CELL lines a direct runCampaignSuite
 * produces, a repeated request is served from the warm cache with
 * byte-identical CELL lines and zero fault-free phase time, and
 * malformed requests come back as ERR instead of killing the daemon.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <thread>

#include "service/daemon.hh"
#include "support/error.hh"

namespace softcheck
{
namespace
{

/** A bound, serving daemon on a private socket + cache dir; stops and
 * cleans up on destruction. */
struct LiveDaemon
{
    std::string dir;
    service::DaemonConfig cfg;
    service::CampaignDaemon daemon;
    std::thread server;

    LiveDaemon() : dir(makeDir()), cfg(makeCfg(dir)), daemon(cfg)
    {
        daemon.bind();
        server = std::thread([this] { daemon.serve(); });
    }

    ~LiveDaemon()
    {
        daemon.requestStop();
        server.join();
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    std::string
    request(const std::string &line)
    {
        return service::daemonRequest(cfg.socketPath, line);
    }

    static std::string
    makeDir()
    {
        std::string tmpl = (std::filesystem::temp_directory_path() /
                            "softcheck-daemon-XXXXXX")
                               .string();
        char *p = ::mkdtemp(tmpl.data());
        if (p == nullptr)
            throw std::runtime_error("mkdtemp failed");
        return p;
    }

    static service::DaemonConfig
    makeCfg(const std::string &dir)
    {
        service::DaemonConfig c;
        c.socketPath = dir + "/d.sock";
        c.cacheDir = dir + "/cache";
        c.threads = 2;
        return c;
    }
};

/** The deterministic lines of a response (the bit-identity subject). */
std::vector<std::string>
cellLines(const std::string &response)
{
    std::vector<std::string> out;
    std::istringstream is(response);
    std::string line;
    while (std::getline(is, line))
        if (line.rfind("CELL ", 0) == 0)
            out.push_back(line);
    return out;
}

const char kSmallRequest[] =
    "SUITE workloads=tiff2bw,g721enc modes=original,dupvalchks "
    "trials=40 seed=171 checkpoints=8";

TEST(ServiceDaemon, PingStatsShutdown)
{
    LiveDaemon d;
    EXPECT_EQ(d.request("PING"), "PONG\n");
    EXPECT_EQ(d.request("STATS"), "STATS jobs=0 active=0\n");
    EXPECT_EQ(d.request("SHUTDOWN"), "BYE\n");
    // serve() exits on its own after SHUTDOWN; the destructor's
    // requestStop is then a no-op.
}

TEST(ServiceDaemon, MalformedRequestsReturnErr)
{
    LiveDaemon d;
    EXPECT_EQ(d.request("BOGUS").rfind("ERR ", 0), 0u);
    EXPECT_EQ(d.request("SUITE modes=original").rfind("ERR ", 0), 0u);
    EXPECT_EQ(
        d.request("SUITE workloads=tiff2bw modes=nosuchmode")
            .rfind("ERR ", 0),
        0u);
    EXPECT_EQ(d.request("SUITE workloads=tiff2bw modes=original "
                        "shards=2 sampling=stratified")
                  .rfind("ERR ", 0),
              0u);
    // The daemon survives all of the above.
    EXPECT_EQ(d.request("PING"), "PONG\n");
}

TEST(ServiceDaemon, SuiteMatchesDirectRun)
{
    LiveDaemon d;
    const std::string response = d.request(kSmallRequest);
    ASSERT_EQ(response.rfind("ERR", 0), std::string::npos) << response;

    const service::SuiteRequest req =
        service::parseSuiteRequest(kSmallRequest);
    const SuiteResult direct = runCampaignSuite(req.suite);
    const std::vector<std::string> expect =
        cellLines(service::formatSuiteResponse(direct));
    EXPECT_EQ(cellLines(response), expect);
    EXPECT_NE(response.find("DONE cells=4"), std::string::npos);
}

TEST(ServiceDaemon, SecondRequestServedFromWarmCache)
{
    LiveDaemon d;
    const std::string cold = d.request(kSmallRequest);
    ASSERT_EQ(cold.rfind("ERR", 0), std::string::npos) << cold;
    EXPECT_NE(cold.find("CACHE servedCells=0 totalCells=4"),
              std::string::npos)
        << cold;

    const std::string warm = d.request(kSmallRequest);
    // Every cell hits, the fault-free phases cost exactly nothing, and
    // the deterministic CELL lines are byte-identical — the same
    // assertion the CI service-smoke job makes against the real binary.
    EXPECT_NE(warm.find("CACHE servedCells=4 totalCells=4"),
              std::string::npos)
        << warm;
    EXPECT_NE(warm.find("compile=0.000000 profile=0.000000 "
                        "baseline=0.000000 golden=0.000000"),
              std::string::npos)
        << warm;
    EXPECT_EQ(cellLines(cold), cellLines(warm));

    // cache=off must bypass the warm cache entirely.
    const std::string bypass =
        d.request(std::string(kSmallRequest) + " cache=off");
    EXPECT_NE(bypass.find("CACHE servedCells=0 totalCells=4"),
              std::string::npos)
        << bypass;
    EXPECT_EQ(cellLines(cold), cellLines(bypass));
}

TEST(ServiceDaemon, ParseRejectsAndAccepts)
{
    using service::parseSuiteRequest;
    const service::SuiteRequest req = parseSuiteRequest(
        "SUITE workloads=a,b modes=original,fulldup seeds=1,2,3 "
        "trials=9 seed=4 tier=lockstep lanes=4 checkpoints=16 "
        "placement=uniform budget=1024 shards=2 swap=1 elide=1 "
        "sampling=blind cache=off");
    EXPECT_EQ(req.suite.workloads,
              (std::vector<std::string>{"a", "b"}));
    ASSERT_EQ(req.suite.modes.size(), 2u);
    EXPECT_EQ(req.suite.modes[1], HardeningMode::FullDup);
    EXPECT_EQ(req.suite.seeds, (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_EQ(req.suite.base.trials, 9u);
    EXPECT_EQ(req.suite.base.seed, 4u);
    EXPECT_EQ(req.suite.base.tier, ExecTier::Lockstep);
    EXPECT_EQ(req.suite.base.lanes, 4u);
    EXPECT_EQ(req.suite.base.checkpoints, 16u);
    EXPECT_EQ(req.suite.base.placement, CheckpointPlacement::Uniform);
    EXPECT_EQ(req.suite.base.snapshotBudgetBytes, 1024u);
    EXPECT_EQ(req.suite.base.shards, 2u);
    EXPECT_TRUE(req.suite.base.swapTrainTest);
    EXPECT_TRUE(req.suite.base.elideVacuousChecks);
    EXPECT_FALSE(req.useCache);

    EXPECT_THROW(parseSuiteRequest("SUITE modes=original"), FatalError);
    EXPECT_THROW(parseSuiteRequest("SUITE workloads=a"), FatalError);
    EXPECT_THROW(parseSuiteRequest("SUITE workloads=a modes=original "
                                   "junk"),
                 FatalError);
    EXPECT_THROW(parseSuiteRequest("SUITE workloads=a modes=original "
                                   "tier=quantum"),
                 FatalError);
}

} // namespace
} // namespace softcheck
