/**
 * @file
 * Round-trip tests for the campaign service's serializers
 * (src/service/serialize.hh and the Memory/CostModel serialization
 * they build on). The load-bearing claims:
 *
 *  - Every serialized object deserializes to an equal one (contents,
 *    cost-model state, golden-run fields).
 *  - A COW snapshot chain serialized through one page pool costs its
 *    resident bytes, not K full copies, and the page *sharing* itself
 *    survives the round trip — deserialized snapshots still dedup by
 *    page identity, so restoreFrom/contentsEqual stay O(diverged).
 *  - Corrupt or truncated streams throw FatalError (never UB), which
 *    is what lets the artifact cache treat them as misses.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "fault/campaign_internal.hh"
#include "interp/cost_model.hh"
#include "service/serialize.hh"
#include "support/byte_io.hh"

namespace softcheck
{
namespace
{

using campaign_detail::characterizeCell;
using campaign_detail::CellCharacterization;

Memory
patternedMemory()
{
    Memory m;
    const uint64_t a = m.alloc(1000, "a");
    const uint64_t b = m.alloc(64, "b");
    const uint64_t c = m.alloc(3 * Memory::kPageSize, "c");
    for (uint64_t i = 0; i < 1000; i += 8)
        m.write(a + i, 8, 0x1111111111111111ull * (i / 8 + 1));
    m.write(b + 4, 4, 0xdeadbeef);
    m.write(c + 2 * Memory::kPageSize, 2, 0x7777);
    return m;
}

std::string
serializeOneMemory(const Memory &m)
{
    ByteWriter w;
    Memory::PagePoolWriter pool;
    m.serialize(w, pool);
    return std::move(w).take();
}

TEST(SerializeMemory, RoundTripPreservesContents)
{
    const Memory m = patternedMemory();
    const std::string bytes = serializeOneMemory(m);

    ByteReader r(bytes);
    Memory::PagePoolReader pool;
    const Memory back = Memory::deserialize(r, pool);
    EXPECT_TRUE(r.atEnd());
    EXPECT_TRUE(m.contentsEqual(back));
    EXPECT_TRUE(back.contentsEqual(m));
    EXPECT_EQ(m.bytesAllocated(), back.bytesAllocated());
    EXPECT_EQ(m.numRegions(), back.numRegions());
}

TEST(SerializeMemory, DeserializedMemoryIsCleanShared)
{
    // A deserialized Memory must behave like a fresh snapshot: writing
    // to it clones pages instead of mutating blocks another
    // deserialized Memory from the same pool shares.
    Memory m = patternedMemory();
    ByteWriter w;
    Memory::PagePoolWriter wpool;
    m.serialize(w, wpool);
    m.serialize(w, wpool); // same pages again: pure id references

    const std::string bytes = std::move(w).take();
    ByteReader r(bytes);
    Memory::PagePoolReader rpool;
    Memory first = Memory::deserialize(r, rpool);
    Memory second = Memory::deserialize(r, rpool);
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(first.dirtyPageCount(), 0u);

    // They share blocks (dedup sees no new bytes for the second)...
    std::unordered_set<const void *> seen;
    const uint64_t firstBytes = first.accountPages(seen);
    EXPECT_GT(firstBytes, 0u);
    EXPECT_EQ(second.accountPages(seen), 0u);

    // ...and a write to one is invisible to the other.
    uint64_t before = 0, after = 0;
    ASSERT_TRUE(second.read(0x10000, 8, before));
    ASSERT_TRUE(first.write(0x10000, 8, before ^ 0xffull));
    ASSERT_TRUE(second.read(0x10000, 8, after));
    EXPECT_EQ(before, after);
}

TEST(SerializeMemory, CowChainCostsResidentBytesNotFullCopies)
{
    // Build a snapshot-like chain: copies of one Memory with a few
    // pages dirtied between captures, exactly the shape of a golden
    // checkpoint chain.
    Memory live = patternedMemory();
    std::vector<Memory> chain;
    for (unsigned k = 0; k < 6; ++k) {
        chain.emplace_back(live); // COW share point
        // Dirty one page before the next capture.
        live.write(0x10000 + k * Memory::kPageSize, 8, 0xABCD00 + k);
    }

    // One shared pool across the chain vs. each Memory standalone.
    ByteWriter shared_w;
    Memory::PagePoolWriter shared_pool;
    for (const Memory &m : chain)
        m.serialize(shared_w, shared_pool);
    uint64_t standalone = 0;
    for (const Memory &m : chain)
        standalone += serializeOneMemory(m).size();

    // The satellite claim: serialized chain bytes < K full copies.
    EXPECT_LT(shared_w.size(), standalone);

    // Sharing survives the round trip: the deserialized chain's
    // deduped resident bytes equal the original chain's.
    std::unordered_set<const void *> orig_seen;
    uint64_t orig_resident = 0;
    for (const Memory &m : chain)
        orig_resident += m.accountPages(orig_seen);

    const std::string bytes = std::move(shared_w).take();
    ByteReader r(bytes);
    Memory::PagePoolReader rpool;
    std::vector<Memory> back;
    for (unsigned k = 0; k < chain.size(); ++k)
        back.push_back(Memory::deserialize(r, rpool));
    EXPECT_TRUE(r.atEnd());

    std::unordered_set<const void *> back_seen;
    uint64_t back_resident = 0;
    for (const Memory &m : back)
        back_resident += m.accountPages(back_seen);
    EXPECT_EQ(orig_resident, back_resident);
    for (unsigned k = 0; k < chain.size(); ++k)
        EXPECT_TRUE(chain[k].contentsEqual(back[k])) << "snapshot " << k;
}

TEST(SerializeMemory, TruncatedStreamThrowsFatalError)
{
    const std::string bytes = serializeOneMemory(patternedMemory());
    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{5}, bytes.size() / 2,
          bytes.size() - 1}) {
        ByteReader r(std::string_view(bytes).substr(0, cut));
        Memory::PagePoolReader pool;
        EXPECT_THROW(Memory::deserialize(r, pool), FatalError)
            << "cut at " << cut;
    }
}

TEST(SerializeCost, RoundTripRestoresFullState)
{
    CostConfig cfg;
    cfg.issueWidth = 3;
    cfg.predictorEntries = 64;
    CostModel m(cfg);
    for (uint64_t i = 0; i < 500; ++i) {
        m.onInstr(i % 7 == 0 ? Opcode::SDiv : Opcode::Add);
        m.onMemAccess(0x40000 + (i * 72) % 16384);
        m.onBranch(i % 13, i % 3 == 0);
    }
    ByteWriter w;
    m.serialize(w);
    const std::string bytes = std::move(w).take();

    ByteReader r(bytes);
    const CostModel back = CostModel::deserialize(r);
    EXPECT_TRUE(r.atEnd());
    EXPECT_TRUE(m.sameState(back));
    EXPECT_EQ(m.cycles(), back.cycles());
    EXPECT_EQ(m.cacheMisses(), back.cacheMisses());
    EXPECT_EQ(m.branchMispredicts(), back.branchMispredicts());
}

TEST(SerializeCost, CorruptConfigThrowsNotAborts)
{
    // A zeroed stream decodes to an all-zero CostConfig, which must be
    // rejected with FatalError before the constructor divides by a
    // zero field (corrupt cache bundles take this path).
    const std::string zeros(256, '\0');
    ByteReader r(zeros);
    EXPECT_THROW(CostModel::deserialize(r), FatalError);
}

TEST(SerializeRunResult, RoundTripAllFields)
{
    RunResult res;
    res.term = Termination::Trap;
    res.trap = TrapKind::OutOfBounds;
    res.failedCheckId = 17;
    res.retValue = 0x1122334455667788ull;
    res.dynInstrs = 123456;
    res.cycles = 789012;
    res.endCycle = 789500;
    res.cacheMisses = 42;
    res.branchMispredicts = 7;
    res.checkEvals = 99;
    res.prunedToGolden = true;
    res.fault.injected = true;
    res.fault.slot = 5;
    res.fault.slotType = TypeKind::F64;
    res.fault.bit = 52;
    res.fault.before = 0xAA;
    res.fault.after = 0xBB;
    res.fault.atDynInstr = 1000;
    res.fault.atCycle = 2000;

    ByteWriter w;
    service::writeRunResult(w, res);
    const std::string bytes = std::move(w).take();
    ByteReader r(bytes);
    const RunResult back = service::readRunResult(r);
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(res.term, back.term);
    EXPECT_EQ(res.trap, back.trap);
    EXPECT_EQ(res.failedCheckId, back.failedCheckId);
    EXPECT_EQ(res.retValue, back.retValue);
    EXPECT_EQ(res.dynInstrs, back.dynInstrs);
    EXPECT_EQ(res.cycles, back.cycles);
    EXPECT_EQ(res.endCycle, back.endCycle);
    EXPECT_EQ(res.cacheMisses, back.cacheMisses);
    EXPECT_EQ(res.branchMispredicts, back.branchMispredicts);
    EXPECT_EQ(res.checkEvals, back.checkEvals);
    EXPECT_EQ(res.prunedToGolden, back.prunedToGolden);
    EXPECT_EQ(res.fault.injected, back.fault.injected);
    EXPECT_EQ(res.fault.slot, back.fault.slot);
    EXPECT_EQ(res.fault.slotType, back.fault.slotType);
    EXPECT_EQ(res.fault.bit, back.fault.bit);
    EXPECT_EQ(res.fault.before, back.fault.before);
    EXPECT_EQ(res.fault.after, back.fault.after);
    EXPECT_EQ(res.fault.atDynInstr, back.fault.atDynInstr);
    EXPECT_EQ(res.fault.atCycle, back.fault.atCycle);
}

TEST(SerializePreparedRun, RoundTrip)
{
    const Workload &w = getWorkload("tiff2bw");
    const WorkloadRunSpec spec = w.makeInput(false);
    const PreparedRun pr = prepareRun(spec);

    ByteWriter bw;
    Memory::PagePoolWriter wpool;
    service::writePreparedRun(bw, pr, wpool);
    const std::string bytes = std::move(bw).take();

    ByteReader r(bytes);
    Memory::PagePoolReader rpool;
    const PreparedRun back = service::readPreparedRun(r, rpool);
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(pr.args, back.args);
    EXPECT_EQ(pr.bufferAddr, back.bufferAddr);
    ASSERT_NE(back.mem, nullptr);
    EXPECT_TRUE(pr.mem->contentsEqual(*back.mem));
}

/**
 * Snapshots + golden run + hardening report of a real
 * characterization: the exact payload the artifact cache and shard
 * bundles carry.
 */
TEST(SerializeSnapshot, CharacterizationChainRoundTrips)
{
    CampaignConfig cfg;
    cfg.workload = "g721enc";
    cfg.mode = HardeningMode::DupValChks;
    cfg.trials = 1; // characterization only
    cfg.checkpoints = 8;
    const CellCharacterization cell =
        characterizeCell(cfg, nullptr, nullptr);
    ASSERT_GT(cell.snapshots.size(), 0u);
    const ExecModule &em = *cell.module().em;

    ByteWriter w;
    Memory::PagePoolWriter wpool;
    for (const Snapshot &s : cell.snapshots)
        service::writeSnapshot(w, s, em, wpool);
    service::writeHardeningReport(w, cell.proto.report);
    const std::string bytes = std::move(w).take();

    ByteReader r(bytes);
    Memory::PagePoolReader rpool;
    for (const Snapshot &s : cell.snapshots) {
        const Snapshot back = service::readSnapshot(r, em, rpool);
        EXPECT_EQ(s.dynInstr(), back.dynInstr());
        EXPECT_EQ(s.state.stack.size(), back.state.stack.size());
        EXPECT_EQ(s.state.globalBases, back.state.globalBases);
        EXPECT_TRUE(s.state.cost.sameState(back.state.cost));
        EXPECT_TRUE(s.mem.contentsEqual(back.mem));
        for (std::size_t f = 0; f < s.state.stack.size(); ++f) {
            EXPECT_EQ(s.state.stack[f].fn, back.state.stack[f].fn);
            EXPECT_EQ(s.state.stack[f].regs, back.state.stack[f].regs);
            EXPECT_EQ(s.state.stack[f].recent,
                      back.state.stack[f].recent);
            EXPECT_EQ(s.state.stack[f].recentCount,
                      back.state.stack[f].recentCount);
            EXPECT_EQ(s.state.stack[f].recentPos,
                      back.state.stack[f].recentPos);
            EXPECT_EQ(s.state.stack[f].ip, back.state.stack[f].ip);
        }
    }
    const HardeningReport rep = service::readHardeningReport(r);
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(cell.proto.report.mode, rep.mode);
    EXPECT_EQ(cell.proto.report.valueChecks, rep.valueChecks);
    EXPECT_EQ(cell.proto.report.eqChecks, rep.eqChecks);
}

} // namespace
} // namespace softcheck
