/**
 * @file
 * Artifact-cache tests: a characterization served from a warm cache
 * must be bit-identical to a computed one in every result field, the
 * cache key must track exactly the knobs the characterization depends
 * on (and ignore the trial-phase knobs it doesn't), and corruption of
 * any kind must degrade to a miss — never to a wrong result or a
 * crash.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "fault/campaign_internal.hh"
#include "service/artifact_cache.hh"

namespace softcheck
{
namespace
{

using campaign_detail::characterizeCell;
using campaign_detail::CellCharacterization;

/** Fresh private cache directory, removed on destruction. */
struct TempCacheDir
{
    std::string path;

    TempCacheDir()
    {
        std::string tmpl = (std::filesystem::temp_directory_path() /
                            "softcheck-cache-XXXXXX")
                               .string();
        char *p = ::mkdtemp(tmpl.data());
        if (p == nullptr)
            throw std::runtime_error("mkdtemp failed");
        path = p;
    }

    ~TempCacheDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

CampaignConfig
smallConfig(const std::string &cache_dir)
{
    CampaignConfig cfg;
    cfg.workload = "tiff2bw";
    cfg.mode = HardeningMode::DupValChks;
    cfg.trials = 40;
    cfg.seed = 0xC0FFEE;
    cfg.threads = 1;
    cfg.checkpoints = 8;
    cfg.artifactCacheDir = cache_dir;
    return cfg;
}

void
expectSameResult(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.usdcLargeChange, b.usdcLargeChange);
    EXPECT_EQ(a.usdcSmallChange, b.usdcSmallChange);
    EXPECT_EQ(a.goldenDynInstrs, b.goldenDynInstrs);
    EXPECT_EQ(a.goldenCycles, b.goldenCycles);
    EXPECT_EQ(a.goldenCheckEvals, b.goldenCheckEvals);
    EXPECT_EQ(a.baselineCycles, b.baselineCycles);
    EXPECT_EQ(a.calibrationCheckFails, b.calibrationCheckFails);
    EXPECT_EQ(a.disabledCheckCount, b.disabledCheckCount);
    EXPECT_EQ(a.totalCheckCount, b.totalCheckCount);
    EXPECT_EQ(a.snapshotCount, b.snapshotCount);
    EXPECT_EQ(a.snapshotBytes, b.snapshotBytes);
    EXPECT_EQ(a.snapshotBytesFullCopy, b.snapshotBytesFullCopy);
    EXPECT_EQ(a.snapshotDynInstrs, b.snapshotDynInstrs);
    EXPECT_EQ(a.ffReplayInstrs, b.ffReplayInstrs);
    EXPECT_EQ(a.ffRestorePages, b.ffRestorePages);
    EXPECT_EQ(a.report.valueChecks, b.report.valueChecks);
    EXPECT_EQ(a.report.eqChecks, b.report.eqChecks);
    EXPECT_EQ(a.report.duplicatedInstrs, b.report.duplicatedInstrs);
}

TEST(ArtifactCache, ColdThenWarmIsBitIdentical)
{
    TempCacheDir dir;
    const CampaignConfig cfg = smallConfig(dir.path);

    CampaignConfig plain = cfg;
    plain.artifactCacheDir.clear();
    const CampaignResult uncached = runCampaign(plain);

    const CampaignResult cold = runCampaign(cfg);
    EXPECT_FALSE(cold.servedFromCache);
    EXPECT_GT(cold.phase.goldenSeconds, 0.0);
    EXPECT_TRUE(std::filesystem::exists(service::cellCachePath(cfg)));

    const CampaignResult warm = runCampaign(cfg);
    EXPECT_TRUE(warm.servedFromCache);
    // The whole point: the fault-free phases cost nothing warm.
    EXPECT_EQ(warm.phase.compileSeconds, 0.0);
    EXPECT_EQ(warm.phase.profileSeconds, 0.0);
    EXPECT_EQ(warm.phase.baselineSeconds, 0.0);
    EXPECT_EQ(warm.phase.goldenSeconds, 0.0);
    EXPECT_GT(warm.phase.cacheLoadSeconds, 0.0);

    expectSameResult(uncached, cold);
    expectSameResult(cold, warm);
}

TEST(ArtifactCache, WarmServesEveryTrialPhaseVariant)
{
    // seed / trials / tier are trial-phase knobs, deliberately outside
    // the key: the variant run must hit the same bundle.
    TempCacheDir dir;
    const CampaignConfig cfg = smallConfig(dir.path);
    const CampaignResult cold = runCampaign(cfg);
    EXPECT_FALSE(cold.servedFromCache);

    CampaignConfig variant = cfg;
    variant.seed = cfg.seed + 1;
    variant.trials = cfg.trials / 2;
    variant.tier = ExecTier::Threaded;
    EXPECT_EQ(service::cellCacheKey(cfg), service::cellCacheKey(variant));
    const CampaignResult warm = runCampaign(variant);
    EXPECT_TRUE(warm.servedFromCache);
    // Same characterization, different trial phase.
    EXPECT_EQ(cold.goldenDynInstrs, warm.goldenDynInstrs);
    EXPECT_EQ(cold.snapshotBytes, warm.snapshotBytes);
    EXPECT_EQ(warm.totalTrials(), variant.trials);
}

TEST(ArtifactCache, KeyTracksCharacterizationKnobs)
{
    const CampaignConfig base = smallConfig("/nonexistent");
    const std::string k = service::cellCacheKey(base);

    auto differs = [&](auto mutate) {
        CampaignConfig c = base;
        mutate(c);
        return service::cellCacheKey(c) != k;
    };
    EXPECT_TRUE(differs([](CampaignConfig &c) { c.workload = "g721enc"; }));
    EXPECT_TRUE(
        differs([](CampaignConfig &c) { c.mode = HardeningMode::DupOnly; }));
    EXPECT_TRUE(differs([](CampaignConfig &c) { c.checkpoints = 4; }));
    EXPECT_TRUE(differs(
        [](CampaignConfig &c) { c.placement = CheckpointPlacement::Uniform; }));
    EXPECT_TRUE(differs([](CampaignConfig &c) { c.swapTrainTest = true; }));
    EXPECT_TRUE(differs([](CampaignConfig &c) { c.enableOpt1 = false; }));
    EXPECT_TRUE(
        differs([](CampaignConfig &c) { c.elideVacuousChecks = true; }));
    EXPECT_TRUE(differs([](CampaignConfig &c) { c.cost.issueWidth = 4; }));
    EXPECT_TRUE(
        differs([](CampaignConfig &c) { c.snapshotBudgetBytes = 4096; }));
    EXPECT_TRUE(
        differs([](CampaignConfig &c) { c.restoreInstrsPerPage = 0; }));

    auto same = [&](auto mutate) {
        CampaignConfig c = base;
        mutate(c);
        return service::cellCacheKey(c) == k;
    };
    EXPECT_TRUE(same([](CampaignConfig &c) { c.seed = 999; }));
    EXPECT_TRUE(same([](CampaignConfig &c) { c.trials = 7; }));
    EXPECT_TRUE(same([](CampaignConfig &c) { c.threads = 9; }));
    EXPECT_TRUE(same([](CampaignConfig &c) { c.tier = ExecTier::Lockstep; }));
    EXPECT_TRUE(same([](CampaignConfig &c) { c.lanes = 2; }));
    EXPECT_TRUE(same([](CampaignConfig &c) { c.timeoutFactor = 5.0; }));
    EXPECT_TRUE(same(
        [](CampaignConfig &c) { c.sampling = SamplingPlan::Stratified; }));
}

TEST(ArtifactCache, SerializeCellRoundTrip)
{
    CampaignConfig cfg = smallConfig("");
    const CellCharacterization cell =
        characterizeCell(cfg, nullptr, nullptr);
    const std::string bytes = service::serializeCell(cell, cfg);
    // Sanity: the serialized snapshot chain must not balloon to the
    // full-copy footprint COW sharing avoids in memory.
    EXPECT_LT(bytes.size(),
              cell.proto.snapshotBytesFullCopy +
                  cell.proto.snapshotBytes);

    const CellCharacterization back = service::deserializeCell(
        bytes, cfg, service::cellCacheKey(cfg));
    expectSameResult(cell.proto, back.proto);
    EXPECT_EQ(cell.disabled, back.disabled);
    EXPECT_EQ(cell.goldenSignal, back.goldenSignal);
    EXPECT_EQ(cell.snapDyn, back.snapDyn);
    EXPECT_EQ(cell.snapNewBytes, back.snapNewBytes);
    ASSERT_EQ(cell.snapshots.size(), back.snapshots.size());
    for (std::size_t i = 0; i < cell.snapshots.size(); ++i) {
        EXPECT_EQ(cell.snapshots[i].dynInstr(),
                  back.snapshots[i].dynInstr());
        EXPECT_TRUE(cell.snapshots[i].mem.contentsEqual(
            back.snapshots[i].mem));
        EXPECT_TRUE(cell.snapshots[i].state.cost.sameState(
            back.snapshots[i].state.cost));
    }
    EXPECT_EQ(cell.goldenRun.cycles, back.goldenRun.cycles);
    EXPECT_EQ(cell.goldenRun.dynInstrs, back.goldenRun.dynInstrs);

    // Key mismatch (a filename collision) must be a FatalError, which
    // loadCachedCell turns into a miss.
    EXPECT_THROW(service::deserializeCell(bytes, cfg, "some other key"),
                 FatalError);
}

TEST(ArtifactCache, CorruptBundleDegradesToMiss)
{
    TempCacheDir dir;
    const CampaignConfig cfg = smallConfig(dir.path);
    const CampaignResult cold = runCampaign(cfg);
    EXPECT_FALSE(cold.servedFromCache);
    const std::string path = service::cellCachePath(cfg);
    ASSERT_TRUE(std::filesystem::exists(path));
    const std::string good = service::readFileBytes(path);

    auto rewrite = [&](const std::string &bytes) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    };

    // Truncation, garbage, and a flipped byte mid-stream: all must
    // fall back to characterizing (and then repair the cache entry).
    for (const std::string &bad :
         {good.substr(0, good.size() / 2), std::string("not a bundle"),
          [&] {
              std::string b = good;
              b[b.size() / 3] ^= 0x5a;
              return b;
          }()}) {
        rewrite(bad);
        const CampaignResult r = runCampaign(cfg);
        EXPECT_FALSE(r.servedFromCache);
        expectSameResult(cold, r);
    }

    // The fallback stored a fresh bundle; the next run hits again.
    const CampaignResult warm = runCampaign(cfg);
    EXPECT_TRUE(warm.servedFromCache);
    expectSameResult(cold, warm);
}

TEST(ArtifactCache, ProbeMatchesStoreAndLoad)
{
    TempCacheDir dir;
    const CampaignConfig cfg = smallConfig(dir.path);
    EXPECT_FALSE(service::probeCachedCell(cfg));

    const CellCharacterization cell =
        characterizeCell(cfg, nullptr, nullptr);
    const std::string path = service::storeCachedCell(cfg, cell);
    EXPECT_EQ(path, service::cellCachePath(cfg));
    EXPECT_TRUE(service::probeCachedCell(cfg));

    CellCharacterization loaded;
    ASSERT_TRUE(service::loadCachedCell(cfg, loaded));
    EXPECT_TRUE(loaded.proto.servedFromCache);
    expectSameResult(cell.proto, loaded.proto);
}

} // namespace
} // namespace softcheck
