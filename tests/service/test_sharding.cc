/**
 * @file
 * Multi-process trial sharding tests. The sharding claim is stronger
 * than statistical agreement: trial-indexed RNG plus commutative
 * accumulation make the merged totals BIT-IDENTICAL to the in-process
 * trial phase at any shard count, on every execution tier — and a
 * worker that dies mid-range (SIGKILL, the crash-recovery satellite)
 * must be re-dispatched without perturbing a single count.
 *
 * These tests fork real worker processes, so their names deliberately
 * avoid the TSan CI filter (TaskPool|Suite): fork-from-threads under
 * TSan is out of scope there.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "fault/suite.hh"
#include "service/shard.hh"
#include "support/error.hh"

namespace softcheck
{
namespace
{

CampaignConfig
shardConfig(ExecTier tier)
{
    CampaignConfig cfg;
    cfg.workload = "tiff2bw";
    cfg.mode = HardeningMode::DupValChks;
    cfg.trials = 60;
    cfg.seed = 0x5eed5;
    cfg.threads = 1;
    cfg.checkpoints = 8;
    cfg.tier = tier;
    return cfg;
}

void
expectSameTrials(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.usdcLargeChange, b.usdcLargeChange);
    EXPECT_EQ(a.usdcSmallChange, b.usdcSmallChange);
    EXPECT_EQ(a.ffReplayInstrs, b.ffReplayInstrs);
    EXPECT_EQ(a.ffRestorePages, b.ffRestorePages);
    EXPECT_EQ(a.goldenDynInstrs, b.goldenDynInstrs);
    EXPECT_EQ(a.goldenCycles, b.goldenCycles);
    EXPECT_EQ(a.snapshotBytes, b.snapshotBytes);
    EXPECT_EQ(a.totalTrials(), b.totalTrials());
}

class ShardEquiv : public ::testing::TestWithParam<ExecTier>
{};

TEST_P(ShardEquiv, AnyShardCountMatchesInProcess)
{
    const CampaignConfig base = shardConfig(GetParam());
    const CampaignResult in_process = runCampaign(base);
    ASSERT_EQ(in_process.totalTrials(), base.trials);

    for (const unsigned shards : {1u, 2u, 4u}) {
        CampaignConfig cfg = base;
        cfg.shards = shards;
        const CampaignResult sharded = runCampaign(cfg);
        SCOPED_TRACE(testing::Message() << "shards=" << shards);
        expectSameTrials(in_process, sharded);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, ShardEquiv,
                         ::testing::Values(ExecTier::Interp,
                                           ExecTier::Threaded,
                                           ExecTier::Lockstep),
                         [](const auto &info) {
                             switch (info.param) {
                               case ExecTier::Interp:
                                 return "Interp";
                               case ExecTier::Threaded:
                                 return "Threaded";
                               default:
                                 return "Lockstep";
                             }
                         });

TEST(ShardRecovery, KilledWorkerIsRedispatchedBitIdentical)
{
    // The env hook makes shard 1's first worker SIGKILL itself halfway
    // through its range; the parent must detect the abnormal exit,
    // discard the partial work, and re-dispatch — with totals
    // bit-identical to the undisturbed runs.
    const CampaignConfig base = shardConfig(ExecTier::Interp);
    const CampaignResult in_process = runCampaign(base);

    ASSERT_EQ(::setenv(service::kKillShardEnv, "1", 1), 0);
    CampaignConfig cfg = base;
    cfg.shards = 3;
    const CampaignResult recovered = runCampaign(cfg);
    ::unsetenv(service::kKillShardEnv);

    expectSameTrials(in_process, recovered);
}

TEST(ShardConfig, StratifiedSamplingIsRejected)
{
    CampaignConfig cfg = shardConfig(ExecTier::Interp);
    cfg.shards = 2;
    cfg.sampling = SamplingPlan::Stratified;
    EXPECT_THROW(runCampaign(cfg), FatalError);
    EXPECT_THROW(service::validateServiceConfig(cfg), FatalError);

    // Either knob alone is fine.
    cfg.shards = 0;
    EXPECT_NO_THROW(service::validateServiceConfig(cfg));
    cfg.shards = 2;
    cfg.sampling = SamplingPlan::Blind;
    EXPECT_NO_THROW(service::validateServiceConfig(cfg));
}

TEST(ShardGrid, ShardedCellsMatchUnsharded)
{
    // The suite engine runs each sharded cell's trial phase as one
    // fork-and-merge task; every cell must still match the unsharded
    // grid bit for bit.
    SuiteConfig sc;
    sc.workloads = {"tiff2bw", "g721enc"};
    sc.modes = {HardeningMode::Original, HardeningMode::DupValChks};
    sc.base.trials = 40;
    sc.base.seed = 0xAB;
    sc.base.threads = 2;
    sc.base.checkpoints = 8;
    const SuiteResult plain = runCampaignSuite(sc);

    SuiteConfig sharded_cfg = sc;
    sharded_cfg.base.shards = 2;
    const SuiteResult sharded = runCampaignSuite(sharded_cfg);

    ASSERT_EQ(plain.cells.size(), sharded.cells.size());
    for (std::size_t i = 0; i < plain.cells.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "cell " << i);
        expectSameTrials(plain.cells[i], sharded.cells[i]);
    }
}

} // namespace
} // namespace softcheck
